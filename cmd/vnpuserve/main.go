// vnpuserve is the serving-path load generator: it drives a multi-chip
// vnpu.Cluster with a Poisson arrival trace of mixed model/topology jobs
// from many tenants and reports throughput, queueing-latency percentiles
// and per-chip utilization — the serving analogue of cmd/vnpu-experiments.
//
// With -priomix the trace carries a priority mix (10% critical, 20%
// high, 40% normal, 30% best-effort, drawn from the -seed'ed RNG so runs
// are reproducible) and the report adds per-class queueing percentiles
// and deadline misses; -deadline attaches a scheduling SLO to the
// high/critical classes.
//
// With -shards N (N > 1) it boots a fleet of N independent cluster
// shards behind the session-affine router: reusable jobs consistent-hash
// to their owner shard, one-shots balance by pressure, and -drain
// exercises a mid-trace drain/rejoin of one shard. With -virtual the
// trace instead replays on the deterministic virtual clock — a
// million-job multi-tenant day in seconds of wall time — and reports
// fleet p50/p99, per-shard utilization, steal/drain counters and the
// warm-hit rate against a single-cluster baseline (BENCH_fleet.json).
//
// Example:
//
//	vnpuserve -chips 4 -jobs 256 -rate 300 -tenants 8
//	vnpuserve -chips 2 -jobs 128 -rate 40 -priomix -json BENCH_sched.json
//	vnpuserve -shards 4 -chips 2 -jobs 400 -reuse -drain 1
//	vnpuserve -shards 4 -virtual -json BENCH_fleet.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"
	"time"

	"github.com/vnpu-sim/vnpu"
	"github.com/vnpu-sim/vnpu/internal/benchjson"
	"github.com/vnpu-sim/vnpu/internal/fleet"
	"github.com/vnpu-sim/vnpu/internal/obs"
	"github.com/vnpu-sim/vnpu/internal/obs/slo"
)

func main() {
	var cfg runConfig
	flag.IntVar(&cfg.chips, "chips", 4, "number of NPU chips in the cluster")
	flag.StringVar(&cfg.chipName, "chip", "sim", "chip configuration: fpga, sim or sim48")
	flag.IntVar(&cfg.jobs, "jobs", 256, "total jobs to submit")
	flag.Float64Var(&cfg.rate, "rate", 300, "mean Poisson arrival rate in jobs/s (0 = open throttle)")
	flag.IntVar(&cfg.queue, "queue", 0, "admission queue depth (0 = default)")
	flag.IntVar(&cfg.quota, "quota", 0, "per-tenant in-flight quota (0 = unlimited)")
	flag.IntVar(&cfg.tenants, "tenants", 8, "number of tenants generating load")
	flag.IntVar(&cfg.iters, "iters", 1, "inference iterations per job")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for the arrival trace and the priority mix (reproducible runs)")
	flag.BoolVar(&cfg.confine, "confine", false, "request NoC confinement for every job")
	flag.BoolVar(&cfg.hetero, "hetero", false, "boot a mixed cluster: odd chips use the FPGA-scale config, so the cost model routes small jobs there")
	flag.BoolVar(&cfg.reuse, "reuse", false, "enable the session pool: jobs lease resident vNPUs per (tenant, model, topology), skipping the create path on warm hits")
	flag.BoolVar(&cfg.priomix, "priomix", false, "draw a priority mix (10% critical / 20% high / 40% normal / 30% best-effort) from the seeded RNG and report per-class latency")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "scheduling SLO attached to high/critical priomix jobs (0 = none); missed deadlines fail fast with ErrDeadlineExceeded and are reported, not fatal")
	flag.StringVar(&cfg.jsonPath, "json", "", "write a machine-readable run summary (jobs/s, warm-hit rate, latency percentiles, per-class stats) to this file")
	flag.IntVar(&cfg.workers, "workers", 0, "async mapper worker pool size (0 = engine default); cache misses compute on these workers instead of the dispatch path")
	flag.Float64Var(&cfg.regret, "regret", 0, "hits-first placement regret tolerance in edit-distance units (0 = exact cached fits only; negative disables hits-first dispatch)")
	flag.Float64Var(&cfg.regretPct, "regret-target", 0, "auto-tune the hits-first bound so this realized-regret quantile (e.g. 0.99) stays at the -regret value; 0 keeps the static bound")
	flag.StringVar(&cfg.timing, "timing", "analytic", "timing backend for job executions: analytic (full simulation every run) or fast (memoized replay of cycle-identical warm runs)")
	flag.BoolVar(&cfg.grounded, "grounded", false, "with -virtual: ground the replay's service times in probe-chip cycle simulations through the -timing backend instead of the synthetic formula (lower -jobs with -timing analytic)")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the whole run to this file (for hot-path work)")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile (after a final GC) at the end of the run to this file")
	flag.StringVar(&cfg.tracePath, "trace", "", "record every job's lifecycle transitions and write them as Chrome trace_event JSON (Perfetto-loadable) to this file")
	flag.StringVar(&cfg.listen, "listen", "", "serve live telemetry on this address for the run's duration: /metrics (Prometheus), /trace(.json), /debug/pprof/ (e.g. :9090)")
	flag.BoolVar(&cfg.verbose, "v", false, "log every job completion")
	flag.IntVar(&cfg.shards, "shards", 1, "number of independent cluster shards behind the session-affine router (1 = single cluster)")
	flag.BoolVar(&cfg.virtual, "virtual", false, "replay the trace on the deterministic virtual clock instead of wall time (fleet model; pairs with -shards)")
	flag.IntVar(&cfg.drainShard, "drain", 1, "shard to drain and rejoin mid-trace when -shards > 1 (-1 disables)")
	flag.DurationVar(&cfg.sloTarget, "slotarget", 2*time.Millisecond, "per-job sojourn target of the declared wildcard SLO (p99, 99.9% availability; 0 disables SLO tracking)")
	flag.StringVar(&cfg.sloReport, "sloreport", "", "write the SLO + critical-path attribution report as JSON to this file (deterministic per seed with -virtual)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "jobs":
			cfg.jobsSet = true
		case "rate":
			cfg.rateSet = true
		}
	})
	// SIGINT/SIGTERM stop the submit loop, not the process: in-flight jobs
	// drain, then the trace export, SLO report and -json summary flush as
	// on a normal exit, so an interrupted -listen run never loses its
	// telemetry.
	cfg.stop = make(chan os.Signal, 1)
	signal.Notify(cfg.stop, os.Interrupt, syscall.SIGTERM)
	var err error
	switch {
	case cfg.virtual:
		err = runVirtual(cfg)
	case cfg.shards > 1:
		err = runFleet(cfg)
	default:
		err = run(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type runConfig struct {
	chips    int
	chipName string
	jobs     int
	rate     float64
	queue    int
	quota    int
	tenants  int
	iters    int
	seed     int64
	confine  bool
	hetero   bool
	reuse    bool
	priomix  bool
	deadline time.Duration
	jsonPath string
	verbose  bool

	workers    int
	regret     float64
	regretPct  float64
	timing     string
	grounded   bool
	cpuprofile string
	memprofile string
	tracePath  string
	listen     string

	shards     int
	virtual    bool
	drainShard int
	jobsSet    bool
	rateSet    bool

	sloTarget time.Duration
	sloReport string
	stop      chan os.Signal
}

// interrupted polls the signal channel; true stops the submit loop.
func (rc *runConfig) interrupted(at int) bool {
	select {
	case sig := <-rc.stop:
		fmt.Printf("-- %v at job %d: stopping submissions, draining in-flight work and flushing reports\n", sig, at)
		return true
	default:
		return false
	}
}

// chipConfig resolves the -chip flag to a chip profile.
func chipConfig(name string) (vnpu.Config, error) {
	switch name {
	case "fpga":
		return vnpu.FPGAConfig(), nil
	case "sim":
		return vnpu.SimConfig(), nil
	case "sim48":
		return vnpu.SimConfig48(), nil
	default:
		return vnpu.Config{}, fmt.Errorf("unknown chip %q (want fpga, sim or sim48)", name)
	}
}

// timingBackend resolves the -timing flag. The analytic default returns
// nil — the cluster's built-in direct path — so the flag's zero value
// changes nothing; "fast" returns one shared memoizing backend for the
// whole run (sound across chips and shards: the memo key covers the
// chip's timing configuration).
func timingBackend(name string) (vnpu.TimingBackend, error) {
	switch name {
	case "analytic":
		return nil, nil
	case "fast":
		return vnpu.FastTimingBackend(0), nil
	default:
		return nil, fmt.Errorf("unknown timing backend %q (want analytic or fast)", name)
	}
}

// timingProbe grounds service times in cycle simulations: one probe chip
// (always the 48-core sim config, so every zoo mix shape fits
// domain-isolated side by side) with the chosen timing backend, each
// model compiled onto its own resident vNPU. service() is a
// fleet.TraceConfig ServiceTime: it reruns the model through the backend
// — full simulation under analytic, a memo replay under fast after the
// first run — and converts the makespan to virtual time at the chip
// clock.
type timingProbe struct {
	sys     *vnpu.System
	backend vnpu.TimingBackend
	vs      []*vnpu.VirtualNPU
	cms     []*vnpu.CompiledModel
	freqMHz float64
}

func newTimingProbe(backendName string, models int) (*timingProbe, error) {
	cfg := vnpu.SimConfig48()
	sys, err := vnpu.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	backend, err := timingBackend(backendName)
	if err != nil {
		return nil, err
	}
	if backend != nil {
		sys.SetTimingBackend(backend)
	}
	mixes, err := buildMix(cfg.Cores())
	if err != nil {
		return nil, err
	}
	p := &timingProbe{sys: sys, backend: backend, freqMHz: float64(cfg.FreqMHz)}
	for i := 0; i < models; i++ {
		mx := mixes[i%len(mixes)]
		mem, err := sys.ModelMemoryBytes(mx.model, mx.topo.NumNodes())
		if err != nil {
			return nil, fmt.Errorf("probe: sizing %s: %w", mx.model.Name, err)
		}
		v, err := sys.Create(vnpu.Request{Topology: mx.topo, MemoryBytes: mem})
		if err != nil {
			return nil, fmt.Errorf("probe: creating vNPU for %s: %w", mx.model.Name, err)
		}
		if err := v.OpenDomain(); err != nil {
			return nil, fmt.Errorf("probe: opening domain for %s: %w", mx.model.Name, err)
		}
		cm, err := sys.CompileFor(v, mx.model)
		if err != nil {
			return nil, fmt.Errorf("probe: compiling %s: %w", mx.model.Name, err)
		}
		p.vs = append(p.vs, v)
		p.cms = append(p.cms, cm)
	}
	return p, nil
}

// service implements fleet.TraceConfig.ServiceTime: deterministic in
// (model, jitter), so grounded replays keep a reproducible OrderHash —
// and the same hash under either backend, since memo replays are
// cycle-identical to the simulation they recorded.
func (p *timingProbe) service(_, model, jitter int) time.Duration {
	i := model % len(p.vs)
	p.vs[i].ResetForRun()
	rep, err := p.sys.RunCompiled(context.Background(), p.vs[i], p.cms[i], 1)
	if err != nil {
		// The probe models never fail after construction; keep the replay
		// alive on the synthetic formula if one somehow does.
		return time.Duration(150+40*model+jitter) * time.Microsecond
	}
	us := float64(rep.Cycles) / p.freqMHz
	return time.Duration(us*float64(time.Microsecond)) + time.Duration(jitter)*time.Microsecond
}

// stats reports the probe backend's memo counters (zeros under analytic).
func (p *timingProbe) stats() vnpu.TimingStats {
	if p.backend == nil {
		return vnpu.TimingStats{Backend: "analytic"}
	}
	return p.backend.Stats()
}

// measureFastSpeedup microbenchmarks the fast backend against the
// analytic reference on the probe chip: the same grounded service calls,
// warm in both cases (compiled programs, resident vNPUs), differing only
// in whether the timing model re-simulates or replays the memo. The
// ratio lands in the -json reports as fast_vs_analytic_speedup.
func measureFastSpeedup(models int) (float64, error) {
	ap, err := newTimingProbe("analytic", models)
	if err != nil {
		return 0, err
	}
	fp, err := newTimingProbe("fast", models)
	if err != nil {
		return 0, err
	}
	const rounds = 8
	for i := 0; i < models; i++ {
		fp.service(0, i, 0) // record each key once: steady state is all hits
	}
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < models; i++ {
			ap.service(0, i, 0)
		}
	}
	analytic := time.Since(t0)
	t1 := time.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < models; i++ {
			fp.service(0, i, 0)
		}
	}
	fast := time.Since(t1)
	if fast <= 0 {
		fast = time.Nanosecond
	}
	return float64(analytic) / float64(fast), nil
}

// classSummary is one priority class's slice of the -json report.
type classSummary struct {
	Class     string `json:"class"`
	Jobs      int    `json:"jobs"`
	P50Micros int64  `json:"p50_us"`
	P99Micros int64  `json:"p99_us"`
	Misses    uint64 `json:"deadline_misses"`
}

// summary is the -json run report, consumed by CI to track the serving
// trajectory (BENCH_session.json, BENCH_sched.json).
type summary struct {
	Chips          int            `json:"chips"`
	Jobs           int            `json:"jobs"`
	Failed         int            `json:"failed"`
	JobsPerSec     float64        `json:"jobs_per_s"`
	P50Micros      int64          `json:"p50_us"`
	P99Micros      int64          `json:"p99_us"`
	Reuse          bool           `json:"reuse"`
	WarmHitRate    float64        `json:"warm_hit_rate"`
	WarmHits       uint64         `json:"warm_hits"`
	ColdCreates    uint64         `json:"cold_creates"`
	Batched        uint64         `json:"batched"`
	Evicted        uint64         `json:"evicted"`
	PlaceHit       float64        `json:"placement_cache_hit_rate"`
	Priomix        bool           `json:"priomix"`
	Seed           int64          `json:"seed"`
	DeadlineMisses uint64         `json:"deadline_misses"`
	Displaced      uint64         `json:"displaced"`
	Promotions     uint64         `json:"aging_promotions"`
	Backfilled     uint64         `json:"backfilled"`
	PerClass       []classSummary `json:"per_class,omitempty"`

	// Placement-pipeline facts (BENCH_serve.json): how dispatch latency
	// relates to mapper latency across PRs.
	Workers       int     `json:"mapper_workers"`
	Regret        float64 `json:"placement_regret"`
	HitsFirst     uint64  `json:"hits_first"`
	MapParked     uint64  `json:"map_parked"`
	MapMissAvgUs  int64   `json:"map_miss_avg_us"`
	PrewarmRuns   uint64  `json:"prewarm_runs"`
	PrewarmHits   uint64  `json:"prewarm_hits"`
	PrewarmWasted uint64  `json:"prewarm_wasted"`
	ColdP50Micros int64   `json:"cold_shape_p50_us"`
	ColdP99Micros int64   `json:"cold_shape_p99_us"`
	ColdShapeJobs int     `json:"cold_shape_jobs"`

	// Spatial-concurrency facts: mean and p99 of the number of vNPUs
	// executing overlapped on a chip (1.0 = the old serialized regime).
	ExecOverlapAvg     float64 `json:"exec_overlap_avg"`
	ChipConcurrencyP99 float64 `json:"chip_concurrency_p99"`

	// Hits-first quality facts: how often the negative-result TTL
	// short-circuited a doomed mapping, and how much placement cost the
	// hits-first shortcut realized versus the async rank's eventual best.
	NegHits       uint64  `json:"negative_ttl_hits"`
	RegretSamples uint64  `json:"regret_samples"`
	RegretAvg     float64 `json:"regret_avg_ted"`
	RegretP99     float64 `json:"regret_p99_ted"`

	// Timing-backend facts: which backend timed executions, how its memo
	// performed, and the microbenchmarked fast-vs-analytic speedup of one
	// warm grounded service call (0 under the analytic backend, where no
	// A/B ran).
	TimingBackend string  `json:"timing_backend"`
	MemoHitRate   float64 `json:"memo_hit_rate"`
	MemoHits      uint64  `json:"memo_hits"`
	MemoMisses    uint64  `json:"memo_misses"`
	FastSpeedup   float64 `json:"fast_vs_analytic_speedup"`

	// Regret auto-tuning facts (zero unless -regret-target).
	RegretTargetPct float64 `json:"regret_target_pct"`
	RegretBound     float64 `json:"regret_bound_ted"`

	// SLO standing and critical-path attribution of the run (nil when
	// -slotarget 0 / tracing off respectively).
	SLO         *slo.Report      `json:"slo,omitempty"`
	Attribution *slo.Attribution `json:"attribution,omitempty"`
}

// workloadMix pairs zoo models with topologies that fit the chip.
type workloadMix struct {
	model vnpu.Model
	topo  *vnpu.Topology
	shape string
}

func buildMix(cores int) ([]workloadMix, error) {
	type entry struct {
		model string
		topo  *vnpu.Topology
		shape string
	}
	var entries []entry
	if cores >= 36 {
		entries = []entry{
			{"alexnet", vnpu.Mesh(2, 2), "2x2"},
			{"mobilenet", vnpu.Chain(4), "1x4"},
			{"resnet18", vnpu.Mesh(2, 3), "2x3"},
			{"resnet34", vnpu.Mesh(3, 3), "3x3"},
			{"googlenet", vnpu.Mesh(2, 4), "2x4"},
			{"gpt2-small", vnpu.Mesh(3, 4), "3x4"},
		}
	} else {
		entries = []entry{
			{"alexnet", vnpu.Mesh(2, 2), "2x2"},
			{"mobilenet", vnpu.Chain(3), "1x3"},
			{"resnet18", vnpu.Mesh(2, 3), "2x3"},
			{"googlenet", vnpu.Mesh(2, 4), "2x4"},
		}
	}
	mixes := make([]workloadMix, len(entries))
	for i, e := range entries {
		m, err := vnpu.ModelByName(e.model)
		if err != nil {
			return nil, err
		}
		mixes[i] = workloadMix{model: m, topo: e.topo, shape: e.shape}
	}
	return mixes, nil
}

// drawPriority maps one RNG draw onto the priomix class distribution.
func drawPriority(rng *rand.Rand) vnpu.Priority {
	r := rng.Float64()
	switch {
	case r < 0.10:
		return vnpu.PriorityCritical
	case r < 0.30:
		return vnpu.PriorityHigh
	case r < 0.70:
		return vnpu.PriorityNormal
	default:
		return vnpu.PriorityBestEffort
	}
}

func priorityName(p vnpu.Priority) string { return p.String() }

func run(rc runConfig) error {
	cfg, err := chipConfig(rc.chipName)
	if err != nil {
		return err
	}
	var opts []vnpu.ClusterOption
	if rc.queue > 0 {
		opts = append(opts, vnpu.WithQueueDepth(rc.queue))
	} else {
		// Default: admit the whole trace so rejections only appear when
		// the operator asks for a tighter queue.
		opts = append(opts, vnpu.WithQueueDepth(rc.jobs))
	}
	if rc.quota > 0 {
		opts = append(opts, vnpu.WithTenantQuota(rc.quota))
	}
	if rc.reuse {
		opts = append(opts, vnpu.WithSessionReuse())
	}
	if rc.workers > 0 {
		opts = append(opts, vnpu.WithMapperWorkers(rc.workers))
	}
	opts = append(opts, vnpu.WithPlacementRegret(rc.regret))
	if rc.regretPct > 0 {
		opts = append(opts, vnpu.WithPlacementRegretTarget(rc.regretPct, rc.regret))
	}
	backend, err := timingBackend(rc.timing)
	if err != nil {
		return err
	}
	if backend != nil {
		opts = append(opts, vnpu.WithTimingBackend(backend))
	}
	if rc.tracePath != "" {
		opts = append(opts, vnpu.WithTracing())
	}
	if rc.sloTarget > 0 {
		opts = append(opts, vnpu.WithSLO(vnpu.SLO{Target: rc.sloTarget, Window: time.Second}))
	}
	if rc.cpuprofile != "" {
		f, err := os.Create(rc.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	mixCores := cfg.Cores()
	kind := rc.chipName
	if rc.hetero {
		// Mixed fleet: odd chips boot the small FPGA-scale config. The
		// placement cost model routes jobs that fit both chip classes to
		// the cheap chips, keeping the big ones free for large topologies.
		specs := make([]vnpu.ChipSpec, rc.chips)
		names := map[string]bool{}
		for i := range specs {
			if i%2 == 1 {
				specs[i] = vnpu.ChipSpec{Config: vnpu.FPGAConfig()}
			} else {
				specs[i] = vnpu.ChipSpec{Config: cfg}
			}
			if n := specs[i].Config.Cores(); n > mixCores {
				mixCores = n
			}
			names[specs[i].Config.Name] = true
		}
		// Label the fleet by what was actually booted: -chips 1 never
		// reaches an odd index, and -chip fpga -hetero is homogeneous.
		if len(names) > 1 {
			kind = rc.chipName + "+fpga"
		}
		opts = append(opts, vnpu.WithChipProfiles(specs...))
	}
	cluster, err := vnpu.NewCluster(cfg, rc.chips, opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()
	defer serveTelemetry(rc.listen, cluster.Handler())()

	mixes, err := buildMix(mixCores)
	if err != nil {
		return err
	}
	var jobOpts []vnpu.Option
	if rc.confine {
		jobOpts = append(jobOpts, vnpu.WithConfinement(true))
	}

	fmt.Printf("vnpuserve: %d chips (%s), %d jobs, %d tenants, rate %.0f jobs/s, quota %d, seed %d",
		cluster.Chips(), kind, rc.jobs, rc.tenants, rc.rate, rc.quota, rc.seed)
	if rc.priomix {
		fmt.Printf(", priomix")
		if rc.deadline > 0 {
			fmt.Printf(" (SLO %s on high+)", rc.deadline)
		}
	}
	fmt.Println()

	rng := rand.New(rand.NewSource(rc.seed))
	ctx := context.Background()
	start := time.Now()
	handles := make([]*vnpu.Handle, 0, rc.jobs)
	prios := make([]vnpu.Priority, 0, rc.jobs)
	colds := make([]bool, 0, rc.jobs)
	seenShapes := make(map[string]bool)
	var rejectedQueue, rejectedQuota, missedAtSubmit int
	for i := 0; i < rc.jobs; i++ {
		if rc.interrupted(i) {
			break
		}
		if rc.rate > 0 && i > 0 {
			time.Sleep(time.Duration(rng.ExpFloat64() / rc.rate * float64(time.Second)))
		}
		mx := mixes[rng.Intn(len(mixes))]
		job := vnpu.Job{
			Tenant:     fmt.Sprintf("tenant-%02d", rng.Intn(rc.tenants)),
			Model:      mx.model,
			Iterations: rc.iters,
			Topology:   mx.topo,
			Options:    jobOpts,
			Reusable:   rc.reuse,
		}
		if rc.priomix {
			job.Priority = drawPriority(rng)
			if rc.deadline > 0 && job.Priority >= vnpu.PriorityHigh {
				job.Deadline = time.Now().Add(rc.deadline)
			}
		}
		h, err := cluster.Submit(ctx, job)
		switch {
		case err == nil:
			handles = append(handles, h)
			prios = append(prios, job.Priority)
			// A shape's first submission is the trace's mapping-miss job:
			// nothing can have warmed its placement yet. Later misses (free
			// sets churn) hit the async mappers too, but the first-seen set
			// is the stable cross-run cohort for time-to-start tracking.
			colds = append(colds, !seenShapes[mx.shape])
			seenShapes[mx.shape] = true
		case errors.Is(err, vnpu.ErrQueueFull):
			rejectedQueue++
		case errors.Is(err, vnpu.ErrQuotaExceeded):
			rejectedQuota++
		case errors.Is(err, vnpu.ErrDeadlineExceeded):
			missedAtSubmit++
		default:
			return fmt.Errorf("submit %d: %w", i, err)
		}
	}

	var (
		waits      []time.Duration
		coldWaits  []time.Duration
		classWaits = map[vnpu.Priority][]time.Duration{}
		classMiss  = map[vnpu.Priority]uint64{}
		failed     int
		missed     int
	)
	for i, h := range handles {
		rep, err := h.Wait(ctx)
		if err != nil {
			if errors.Is(err, vnpu.ErrDeadlineExceeded) {
				missed++
				classMiss[prios[i]]++
			} else {
				failed++
			}
			if rc.verbose {
				fmt.Fprintf(os.Stderr, "job %d failed: %v\n", i, err)
			}
			continue
		}
		waits = append(waits, rep.QueueWait)
		if colds[i] {
			coldWaits = append(coldWaits, rep.QueueWait)
		}
		if rc.priomix {
			classWaits[rep.Priority] = append(classWaits[rep.Priority], rep.QueueWait)
		}
		if rc.verbose {
			fmt.Printf("job %3d %-24s %-11s chip %d  queued %8s  %8.1f FPS (TED %.1f)\n",
				i, rep.Tenant, rep.Priority, rep.Chip, rep.QueueWait.Round(time.Microsecond), rep.FPS, rep.MapCost)
		}
	}
	wall := time.Since(start)

	stats := cluster.Stats()
	fmt.Printf("\ncompleted %d jobs (%d failed, %d deadline-missed, %d shed on queue, %d shed on quota) in %s\n",
		len(waits), failed, missed+missedAtSubmit, rejectedQueue, rejectedQuota, wall.Round(time.Millisecond))
	if wall > 0 {
		fmt.Printf("throughput:    %.1f jobs/s\n", float64(len(waits))/wall.Seconds())
	}
	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		fmt.Printf("queueing:      p50 %s   p99 %s   max %s\n",
			percentile(waits, 0.50).Round(time.Microsecond),
			percentile(waits, 0.99).Round(time.Microsecond),
			waits[len(waits)-1].Round(time.Microsecond))
	}
	ss := cluster.SchedStats()
	var perClass []classSummary
	if rc.priomix {
		var displaced, promoted, backfilled uint64
		for _, cs := range ss.Classes {
			displaced += cs.Displaced
			promoted += cs.Promotions
			backfilled += cs.Backfilled
		}
		fmt.Printf("scheduler:     %d displaced, %d aging promotions, %d backfilled, %d deadline misses\n",
			displaced, promoted, backfilled, ss.DeadlineMisses())
		fmt.Println("per class:")
		for p := vnpu.PriorityCritical; p >= vnpu.PriorityBestEffort; p-- {
			ws := classWaits[p]
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			fmt.Printf("  %-11s %4d jobs   p50 %10s   p99 %10s   %d missed\n",
				priorityName(p), len(ws),
				percentile(ws, 0.50).Round(time.Microsecond),
				percentile(ws, 0.99).Round(time.Microsecond),
				classMiss[p])
			perClass = append(perClass, classSummary{
				Class:     priorityName(p),
				Jobs:      len(ws),
				P50Micros: percentile(ws, 0.50).Microseconds(),
				P99Micros: percentile(ws, 0.99).Microseconds(),
				Misses:    classMiss[p],
			})
		}
	}
	ps := cluster.PlacementStats()
	fmt.Printf("placement:     %d decisions, avg %s   cache %.1f%% hit (%d hit / %d miss, %d evicted)\n",
		ps.Placements, ps.AvgPlaceTime().Round(time.Microsecond),
		ps.HitRate()*100, ps.CacheHits, ps.CacheMisses, ps.CacheEvictions)
	fmt.Printf("mapper:        miss avg %s   %d async, %d hits-first starts, %d map-parked   prewarm %d run / %d hit / %d wasted\n",
		ps.AvgMapTime().Round(time.Microsecond), ps.AsyncMaps,
		stats.HitsFirst, stats.MapParked,
		ps.PrewarmRuns, ps.PrewarmHits, ps.PrewarmWasted)
	if ps.NegHits > 0 || ps.RegretSamples > 0 {
		fmt.Printf("hits-first:    %d negative-TTL hits   regret over %d samples: avg %.2f  p50 %.2f  p99 %.2f  max %.2f TED\n",
			ps.NegHits, ps.RegretSamples,
			ps.AvgRegret(), ps.RegretP50, ps.RegretP99, ps.RegretMax)
	}
	if rc.regretPct > 0 {
		fmt.Printf("regret tuner:  p%g target %.2f TED   live bound %.2f TED   %d pool-growth vetoes\n",
			rc.regretPct*100, rc.regret, cluster.RegretBound(), ps.MapGrowVetoed)
	}
	ts := cluster.TimingStats()
	var speedup float64
	if rc.timing == "fast" {
		if speedup, err = measureFastSpeedup(len(mixes)); err != nil {
			return err
		}
		fmt.Printf("timing:        fast backend   memo %.1f%% hit (%d hit / %d miss / %d bypassed, %d entries)   warm replay %.1fx vs analytic\n",
			ts.HitRate()*100, ts.Hits, ts.Misses, ts.Bypassed, ts.Entries, speedup)
	}
	if len(coldWaits) > 0 {
		sort.Slice(coldWaits, func(i, j int) bool { return coldWaits[i] < coldWaits[j] })
		fmt.Printf("cold shapes:   %d jobs   time-to-start p50 %s   p99 %s\n",
			len(coldWaits),
			percentile(coldWaits, 0.50).Round(time.Microsecond),
			percentile(coldWaits, 0.99).Round(time.Microsecond))
	}
	sess := cluster.SessionStats()
	if rc.reuse {
		fmt.Printf("sessions:      %.1f%% warm (%d warm / %d batched / %d cold)   avg acquire warm %s cold %s\n",
			sess.HitRate()*100, sess.WarmHits, sess.Batched, sess.ColdCreates,
			sess.AvgWarmTime().Round(time.Microsecond), sess.AvgColdTime().Round(time.Microsecond))
		fmt.Printf("               %d evicted (%d TTL, %d LRU, %d capacity pressure), %d resident at end\n",
			sess.Evicted(), sess.EvictedTTL, sess.EvictedLRU, sess.EvictedPressure,
			sess.IdleSessions+sess.BusySessions)
	}
	if stats.ExecOverlapAvg > 0 {
		fmt.Printf("concurrency:   %.2f vNPUs executing overlapped per chip on average   p99 %.0f\n",
			stats.ExecOverlapAvg, stats.ChipConcurrencyP99)
	}
	fmt.Println("per chip:")
	usage := cluster.CoreUsage()
	for i := 0; i < cluster.Chips(); i++ {
		busyPct := 0.0
		if wall > 0 {
			busyPct = float64(stats.ChipBusy[i]) / float64(wall) * 100
		}
		chipCfg := cluster.Chip(i).Config()
		fmt.Printf("  chip %d (%-5s %2d cores): %4d jobs   busy %5.1f%%   final core alloc %3.0f%%",
			i, chipCfg.Name, chipCfg.Cores(), stats.ChipJobs[i], busyPct, usage[i].AllocatedFraction()*100)
		if rc.reuse {
			fmt.Printf(" (%d warm-held)", usage[i].WarmIdle)
		}
		fmt.Println()
	}
	sloRep, sloOK := cluster.SLOReport()
	if sloOK {
		printSLO(sloRep)
	}
	attr, attrOK := cluster.Attribution()
	if attrOK {
		printAttribution(attr)
	}
	if rc.jsonPath != "" {
		var displaced, promoted, backfilled uint64
		for _, cs := range ss.Classes {
			displaced += cs.Displaced
			promoted += cs.Promotions
			backfilled += cs.Backfilled
		}
		sum := summary{
			Chips:          cluster.Chips(),
			Jobs:           len(waits),
			Failed:         failed,
			Reuse:          rc.reuse,
			WarmHitRate:    sess.HitRate(),
			WarmHits:       sess.WarmHits,
			ColdCreates:    sess.ColdCreates,
			Batched:        sess.Batched,
			Evicted:        sess.Evicted(),
			PlaceHit:       ps.HitRate(),
			Priomix:        rc.priomix,
			Seed:           rc.seed,
			DeadlineMisses: ss.DeadlineMisses(),
			Displaced:      displaced,
			Promotions:     promoted,
			Backfilled:     backfilled,
			PerClass:       perClass,
			Workers:        rc.workers,
			Regret:         rc.regret,
			HitsFirst:      stats.HitsFirst,
			MapParked:      stats.MapParked,
			MapMissAvgUs:   ps.AvgMapTime().Microseconds(),
			PrewarmRuns:    ps.PrewarmRuns,
			PrewarmHits:    ps.PrewarmHits,
			PrewarmWasted:  ps.PrewarmWasted,
			ColdShapeJobs:  len(coldWaits),

			ExecOverlapAvg:     stats.ExecOverlapAvg,
			ChipConcurrencyP99: stats.ChipConcurrencyP99,

			NegHits:       ps.NegHits,
			RegretSamples: ps.RegretSamples,
			RegretAvg:     ps.AvgRegret(),
			RegretP99:     ps.RegretP99,

			TimingBackend: ts.Backend,
			MemoHitRate:   ts.HitRate(),
			MemoHits:      ts.Hits,
			MemoMisses:    ts.Misses,
			FastSpeedup:   speedup,

			RegretTargetPct: rc.regretPct,
			RegretBound:     cluster.RegretBound(),
		}
		if sloOK {
			sum.SLO = &sloRep
		}
		if attrOK {
			sum.Attribution = &attr
		}
		if wall > 0 {
			sum.JobsPerSec = float64(len(waits)) / wall.Seconds()
		}
		if len(waits) > 0 {
			sum.P50Micros = percentile(waits, 0.50).Microseconds()
			sum.P99Micros = percentile(waits, 0.99).Microseconds()
		}
		if len(coldWaits) > 0 {
			sum.ColdP50Micros = percentile(coldWaits, 0.50).Microseconds()
			sum.ColdP99Micros = percentile(coldWaits, 0.99).Microseconds()
		}
		if err := benchjson.Write(rc.jsonPath, sum); err != nil {
			return err
		}
	}
	if rc.tracePath != "" {
		if err := writeChromeTrace(rc.tracePath, cluster.TraceSnapshot(), cluster.TraceDropped()); err != nil {
			return err
		}
	}
	if rc.sloReport != "" {
		run := slo.RunReport{Seed: rc.seed, Jobs: len(waits), SLO: sloRep, Attribution: attr}
		if err := writeRunReport(rc.sloReport, run); err != nil {
			return err
		}
	}
	if err := writeMemProfile(rc.memprofile); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d jobs failed", failed)
	}
	return nil
}

// shardSummary is one shard's slice of the BENCH_fleet.json report.
type shardSummary struct {
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected"`
	WarmHits    int     `json:"warm_hits"`
	StolenFrom  int     `json:"stolen_from"`
	StolenInto  int     `json:"stolen_into"`
	Utilization float64 `json:"utilization"`
}

// fleetSummary is the -json report of a fleet run (BENCH_fleet.json):
// fleet-level latency percentiles, membership-churn counters, and the
// warm-hit rate next to the single-cluster baseline.
type fleetSummary struct {
	Shards           int            `json:"shards"`
	ChipsPerShard    int            `json:"chips_per_shard"`
	CoresPerChip     int            `json:"cores_per_chip"`
	Jobs             int            `json:"jobs"`
	RatePerSec       float64        `json:"rate_jobs_per_s"`
	Seed             int64          `json:"seed"`
	Virtual          bool           `json:"virtual"`
	WallMillis       int64          `json:"wall_ms"`
	VirtualMillis    int64          `json:"virtual_ms"`
	Completed        int            `json:"completed"`
	Rejected         int            `json:"rejected"`
	ReHomed          int            `json:"rehomed"`
	Steals           int            `json:"steals"`
	DrainShard       int            `json:"drain_shard"`
	WarmHits         int            `json:"warm_hits"`
	WarmRate         float64        `json:"warm_hit_rate"`
	BaselineWarmRate float64        `json:"baseline_warm_hit_rate"`
	P50Micros        int64          `json:"p50_us"`
	P99Micros        int64          `json:"p99_us"`
	OrderHash        string         `json:"order_hash,omitempty"`
	PerShard         []shardSummary `json:"per_shard"`

	// Timing-backend facts; Grounded marks a -virtual replay whose
	// service times came from probe-chip cycle simulations through the
	// backend rather than the synthetic formula.
	TimingBackend string  `json:"timing_backend"`
	Grounded      bool    `json:"grounded,omitempty"`
	MemoHitRate   float64 `json:"memo_hit_rate"`
	FastSpeedup   float64 `json:"fast_vs_analytic_speedup"`

	// SLO standing and critical-path attribution; with -virtual both are
	// deterministic per seed, and ReportFingerprint digests the combined
	// RunReport (the same bytes -sloreport writes).
	SLO               *slo.Report      `json:"slo,omitempty"`
	Attribution       *slo.Attribution `json:"attribution,omitempty"`
	ReportFingerprint string           `json:"report_fingerprint,omitempty"`
}

// runVirtual replays the fleet trace on the deterministic virtual
// clock: millions of jobs in seconds of wall time, plus a single-cluster
// baseline replay of the same trace for the warm-affinity comparison.
func runVirtual(rc runConfig) error {
	cfg, err := chipConfig(rc.chipName)
	if err != nil {
		return err
	}
	cores := cfg.Cores()
	jobs := rc.jobs
	if !rc.jobsSet {
		// Virtual time is cheap: default to the CI-scale million-job day.
		jobs = 1_000_000
	}
	totalCores := rc.shards * rc.chips * cores
	rate := rc.rate
	if !rc.rateSet {
		// The trace model's mean job holds ~3 cores for ~300us, but warm
		// sessions continuous-batch on resident cores, so the sustainable
		// rate sits well above the naive per-job estimate; 1.5x of it lands
		// near 90% utilization with visible queueing and balancer activity.
		rate = 1.5 * float64(totalCores) / (3 * 300e-6)
	}
	tc := fleet.TraceConfig{
		Shards:        rc.shards,
		ChipsPerShard: rc.chips,
		CoresPerChip:  cores,
		Jobs:          jobs,
		RatePerSec:    rate,
		Tenants:       rc.tenants,
		Models:        6,
		ReuseFraction: 0.6,
		Seed:          rc.seed,
		QueueDepth:    rc.queue,
		DrainShard:    rc.drainShard,
		DrainAtFrac:   0.4,
		RejoinAtFrac:  0.7,
	}
	if tc.DrainShard >= tc.Shards {
		tc.DrainShard = -1
	}
	if _, err := timingBackend(rc.timing); err != nil {
		return err
	}
	// -grounded swaps the replay's synthetic service-time formula for
	// probe-chip cycle simulations through the -timing backend: virtual
	// time then reflects the measured per-model makespans, and under the
	// fast backend every repeat of a model is a memo replay instead of a
	// re-simulation — the replay's wall time drops while OrderHash stays
	// reproducible per seed (and equal across backends, since memo
	// replays are cycle-identical).
	var probe *timingProbe
	if rc.grounded {
		probe, err = newTimingProbe(rc.timing, tc.Models)
		if err != nil {
			return err
		}
		tc.ServiceTime = probe.service
	}
	// The replay never reads the observability taps, so a live scrape on
	// the -listen goroutine can watch a virtual-time run without
	// perturbing its determinism.
	gauges := &fleet.ReplayGauges{}
	tc.Observe = gauges
	var rec *obs.Recorder
	if rc.tracePath != "" {
		rec = obs.NewRecorder(tc.Shards, 0)
		tc.Recorder = rec
	}
	// The SLO tracker and critical-path analyzer tap the replay inline:
	// the recorder's rings would truncate a million-job day, while the
	// online folds see every event. Both are deterministic given the
	// seed, so the combined report is byte-identical across runs. (They
	// stay off the live mux: a wall-clock scrape would rotate the virtual
	// windows and corrupt the deterministic report.)
	epoch := time.Unix(0, 0)
	var tracker *slo.Tracker
	critic := slo.NewAnalyzer()
	tc.Sinks = []fleet.EventSink{critic}
	if rc.sloTarget > 0 {
		tracker = slo.NewTracker(func() time.Time { return epoch },
			[]string{"best-effort", "normal", "high", "critical"},
			slo.Objective{Class: -1, Target: rc.sloTarget, Percentile: 0.99,
				Availability: 0.999, Window: 250 * time.Millisecond})
		tc.Sinks = append(tc.Sinks, tracker)
	}
	reg := obs.NewRegistry()
	reg.AddCollector(gauges.Collect)
	defer serveTelemetry(rc.listen, obs.NewMux(reg, rec))()
	fmt.Printf("vnpuserve -virtual: %d shards x %d chips x %d cores (%s), %d jobs at %.0f jobs/s virtual, seed %d",
		tc.Shards, tc.ChipsPerShard, tc.CoresPerChip, cfg.Name, tc.Jobs, tc.RatePerSec, tc.Seed)
	if tc.DrainShard >= 0 {
		fmt.Printf(", drain shard %d at 40%% / rejoin at 70%%", tc.DrainShard)
	}
	if rc.grounded {
		fmt.Printf(", grounded service times (%s timing backend)", rc.timing)
	}
	fmt.Println()

	start := time.Now()
	res, err := fleet.Replay(tc)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	// Same trace, one shard with the whole fleet's capacity: the warm
	// pool has every key, so its hit rate bounds what sharding can keep.
	// The baseline replays untapped — its events would pollute the trace.
	base := tc
	base.Shards = 1
	base.ChipsPerShard = tc.ChipsPerShard * tc.Shards
	base.DrainShard = -1
	base.Recorder = nil
	base.Sinks = nil
	base.Observe = nil
	bres, err := fleet.Replay(base)
	if err != nil {
		return err
	}

	fmt.Printf("\nreplayed %d jobs in %s wall (%s virtual): %d completed, %d rejected typed, 0 lost\n",
		res.Jobs, wall.Round(time.Millisecond), res.VirtualSpan.Round(time.Millisecond),
		res.Completed, res.Rejected)
	if wall > 0 {
		fmt.Printf("replay speed:  %.0f jobs/s wall (%.0fx real time)\n",
			float64(res.Jobs)/wall.Seconds(), float64(res.VirtualSpan)/float64(wall))
	}
	fmt.Printf("fleet latency: p50 %s   p99 %s (sojourn)\n",
		res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	fmt.Printf("warm hits:     %.1f%% sharded vs %.1f%% single-cluster baseline (gap %.1f points)\n",
		res.WarmRate*100, bres.WarmRate*100, (bres.WarmRate-res.WarmRate)*100)
	fmt.Printf("churn:         %d steals, %d re-homed by drain   order hash %016x\n",
		res.Steals, res.ReHomed, res.OrderHash)
	groundedTiming := vnpu.TimingStats{Backend: rc.timing}
	var groundedSpeedup float64
	if probe != nil {
		groundedTiming = probe.stats()
		if rc.timing == "fast" {
			if groundedSpeedup, err = measureFastSpeedup(tc.Models); err != nil {
				return err
			}
		}
		fmt.Printf("timing:        grounded on %s backend   memo %.1f%% hit (%d hit / %d miss)",
			groundedTiming.Backend, groundedTiming.HitRate()*100, groundedTiming.Hits, groundedTiming.Misses)
		if groundedSpeedup > 0 {
			fmt.Printf("   warm replay %.1fx vs analytic", groundedSpeedup)
		}
		fmt.Println()
	}
	fmt.Println("per shard:")
	for i, sh := range res.PerShard {
		fmt.Printf("  shard %d: %7d jobs   %7d completed   %5d rejected   warm %7d   stolen %d out / %d in   util %5.1f%%\n",
			i, sh.Jobs, sh.Completed, sh.Rejected, sh.WarmHits, sh.StolenFrom, sh.StolenInto, sh.Utilization*100)
	}

	// Report time is the replay's virtual end — deterministic, so the
	// window rotation (and therefore the report bytes) is too.
	end := epoch.Add(res.VirtualSpan)
	runRep := slo.RunReport{Seed: tc.Seed, Jobs: res.Jobs, Attribution: critic.Report()}
	if tracker != nil {
		runRep.SLO = tracker.Report(end)
		printSLO(runRep.SLO)
	}
	printAttribution(runRep.Attribution)
	fp, err := slo.Fingerprint(runRep)
	if err != nil {
		return err
	}
	fmt.Printf("slo report:    fingerprint %016x (deterministic per seed)\n", fp)

	if rc.jsonPath != "" {
		sum := fleetSummary{
			Shards:           tc.Shards,
			ChipsPerShard:    tc.ChipsPerShard,
			CoresPerChip:     tc.CoresPerChip,
			Jobs:             res.Jobs,
			RatePerSec:       tc.RatePerSec,
			Seed:             tc.Seed,
			Virtual:          true,
			WallMillis:       wall.Milliseconds(),
			VirtualMillis:    res.VirtualSpan.Milliseconds(),
			Completed:        res.Completed,
			Rejected:         res.Rejected,
			ReHomed:          res.ReHomed,
			Steals:           res.Steals,
			DrainShard:       tc.DrainShard,
			WarmHits:         res.WarmHits,
			WarmRate:         res.WarmRate,
			BaselineWarmRate: bres.WarmRate,
			P50Micros:        res.P50.Microseconds(),
			P99Micros:        res.P99.Microseconds(),
			OrderHash:        fmt.Sprintf("%016x", res.OrderHash),

			TimingBackend: groundedTiming.Backend,
			Grounded:      rc.grounded,
			MemoHitRate:   groundedTiming.HitRate(),
			FastSpeedup:   groundedSpeedup,
		}
		for _, sh := range res.PerShard {
			sum.PerShard = append(sum.PerShard, shardSummary{
				Jobs:        sh.Jobs,
				Completed:   sh.Completed,
				Rejected:    sh.Rejected,
				WarmHits:    sh.WarmHits,
				StolenFrom:  sh.StolenFrom,
				StolenInto:  sh.StolenInto,
				Utilization: sh.Utilization,
			})
		}
		if tracker != nil {
			sum.SLO = &runRep.SLO
		}
		sum.Attribution = &runRep.Attribution
		sum.ReportFingerprint = fmt.Sprintf("%016x", fp)
		if err := benchjson.Write(rc.jsonPath, sum); err != nil {
			return err
		}
	}
	if rc.sloReport != "" {
		if err := writeRunReport(rc.sloReport, runRep); err != nil {
			return err
		}
	}
	if rec != nil {
		if err := writeChromeTrace(rc.tracePath, rec.Snapshot(), rec.Dropped()); err != nil {
			return err
		}
	}
	return writeMemProfile(rc.memprofile)
}

// runFleet drives a real (wall-clock) multi-shard fleet: the Poisson
// trace submits through the session-affine router, and -drain exercises
// a mid-trace drain/rejoin of one shard with zero lost jobs.
func runFleet(rc runConfig) error {
	cfg, err := chipConfig(rc.chipName)
	if err != nil {
		return err
	}
	var opts []vnpu.ClusterOption
	if rc.queue > 0 {
		opts = append(opts, vnpu.WithQueueDepth(rc.queue))
	} else {
		opts = append(opts, vnpu.WithQueueDepth(rc.jobs))
	}
	if rc.quota > 0 {
		opts = append(opts, vnpu.WithTenantQuota(rc.quota))
	}
	if rc.reuse {
		opts = append(opts, vnpu.WithSessionReuse())
	}
	if rc.workers > 0 {
		opts = append(opts, vnpu.WithMapperWorkers(rc.workers))
	}
	opts = append(opts, vnpu.WithPlacementRegret(rc.regret))
	if rc.regretPct > 0 {
		opts = append(opts, vnpu.WithPlacementRegretTarget(rc.regretPct, rc.regret))
	}
	// One backend across every shard: the memo key covers the chip
	// configuration, so shards sharing a memo is sound and lets a model
	// warmed on one shard replay on all of them.
	backend, err := timingBackend(rc.timing)
	if err != nil {
		return err
	}
	if backend != nil {
		opts = append(opts, vnpu.WithTimingBackend(backend))
	}
	if rc.tracePath != "" {
		opts = append(opts, vnpu.WithTracing())
	}
	if rc.sloTarget > 0 {
		opts = append(opts, vnpu.WithSLO(vnpu.SLO{Target: rc.sloTarget, Window: time.Second}))
	}

	f, err := vnpu.NewFleet(cfg, rc.shards, rc.chips, opts...)
	if err != nil {
		return err
	}
	defer f.Close()
	defer serveTelemetry(rc.listen, f.Handler())()

	mixes, err := buildMix(cfg.Cores())
	if err != nil {
		return err
	}
	var jobOpts []vnpu.Option
	if rc.confine {
		jobOpts = append(jobOpts, vnpu.WithConfinement(true))
	}
	drain := rc.drainShard
	if drain >= rc.shards {
		drain = -1
	}
	fmt.Printf("vnpuserve -shards: %d shards x %d chips (%s), %d jobs, %d tenants, rate %.0f jobs/s, seed %d",
		rc.shards, rc.chips, cfg.Name, rc.jobs, rc.tenants, rc.rate, rc.seed)
	if drain >= 0 {
		fmt.Printf(", drain shard %d mid-trace", drain)
	}
	fmt.Println()

	rng := rand.New(rand.NewSource(rc.seed))
	ctx := context.Background()
	start := time.Now()
	handles := make([]*vnpu.FleetHandle, 0, rc.jobs)
	perShardSubmits := make([]int, rc.shards)
	var refused int
	for i := 0; i < rc.jobs; i++ {
		if rc.interrupted(i) {
			break
		}
		if rc.rate > 0 && i > 0 {
			time.Sleep(time.Duration(rng.ExpFloat64() / rc.rate * float64(time.Second)))
		}
		if drain >= 0 && i == rc.jobs/3 {
			if err := f.Drain(ctx, drain); err != nil {
				return fmt.Errorf("drain shard %d: %w", drain, err)
			}
			fmt.Printf("-- drained shard %d at job %d\n", drain, i)
		}
		if drain >= 0 && i == 2*rc.jobs/3 {
			if err := f.Rejoin(drain); err != nil {
				return fmt.Errorf("rejoin shard %d: %w", drain, err)
			}
			fmt.Printf("-- rejoined shard %d at job %d\n", drain, i)
		}
		mx := mixes[rng.Intn(len(mixes))]
		job := vnpu.Job{
			Tenant:     fmt.Sprintf("tenant-%02d", rng.Intn(rc.tenants)),
			Model:      mx.model,
			Iterations: rc.iters,
			Topology:   mx.topo,
			Options:    jobOpts,
			Reusable:   rc.reuse,
		}
		if rc.priomix {
			job.Priority = drawPriority(rng)
		}
		h, err := f.Submit(ctx, job)
		if err != nil {
			if errors.Is(err, vnpu.ErrQueueFull) || errors.Is(err, vnpu.ErrQuotaExceeded) ||
				errors.Is(err, vnpu.ErrNoActiveShards) {
				refused++
				continue
			}
			return fmt.Errorf("submit %d: %w", i, err)
		}
		handles = append(handles, h)
		perShardSubmits[h.Shard()]++
	}

	var waits []time.Duration
	var failed int
	for i, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			failed++
			if rc.verbose {
				fmt.Fprintf(os.Stderr, "job %d failed: %v\n", i, err)
			}
			continue
		}
		waits = append(waits, h.QueueWait())
	}
	wall := time.Since(start)

	fs := f.Stats()
	fmt.Printf("\ncompleted %d jobs (%d failed typed, %d refused typed, 0 lost) in %s\n",
		len(waits), failed, refused, wall.Round(time.Millisecond))
	if wall > 0 {
		fmt.Printf("throughput:    %.1f jobs/s\n", float64(len(waits))/wall.Seconds())
	}
	var p50, p99 time.Duration
	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		p50, p99 = percentile(waits, 0.50), percentile(waits, 0.99)
		fmt.Printf("queueing:      p50 %s   p99 %s   max %s\n",
			p50.Round(time.Microsecond), p99.Round(time.Microsecond),
			waits[len(waits)-1].Round(time.Microsecond))
	}
	fmt.Printf("fleet:         %d steals, %d re-homed, %d rerouted, %d drains, %d rejoins, %d shards active\n",
		fs.Steals, fs.ReHomed, fs.Rerouted, fs.Drains, fs.Rejoins, fs.ActiveShards)
	var warm, cold, batched uint64
	fmt.Println("per shard:")
	for i := 0; i < f.NumShards(); i++ {
		ss := f.Shard(i).SessionStats()
		warm += ss.WarmHits
		cold += ss.ColdCreates
		batched += ss.Batched
		fmt.Printf("  shard %d: %4d submits   %4d completed   pressure %.2f", i, perShardSubmits[i], fs.Shards[i].Completed, fs.Pressure[i])
		if rc.reuse {
			fmt.Printf("   warm %.1f%%", ss.HitRate()*100)
		}
		fmt.Println()
	}
	warmRate := 0.0
	if warm+cold+batched > 0 {
		warmRate = float64(warm+batched) / float64(warm+cold+batched)
	}
	if rc.reuse {
		fmt.Printf("sessions:      %.1f%% warm fleet-wide (%d warm / %d batched / %d cold)\n",
			warmRate*100, warm, batched, cold)
	}
	fleetTiming := vnpu.TimingStats{Backend: "analytic"}
	var fleetSpeedup float64
	if backend != nil {
		fleetTiming = backend.Stats()
		if fleetSpeedup, err = measureFastSpeedup(len(mixes)); err != nil {
			return err
		}
		fmt.Printf("timing:        fast backend   memo %.1f%% hit fleet-wide (%d hit / %d miss)   warm replay %.1fx vs analytic\n",
			fleetTiming.HitRate()*100, fleetTiming.Hits, fleetTiming.Misses, fleetSpeedup)
	}
	sloRep, sloOK := f.SLOReport()
	if sloOK {
		printSLO(sloRep)
	}
	attr, attrOK := f.Attribution()
	if attrOK {
		printAttribution(attr)
	}

	if rc.jsonPath != "" {
		sum := fleetSummary{
			Shards:        rc.shards,
			ChipsPerShard: rc.chips,
			CoresPerChip:  cfg.Cores(),
			Jobs:          len(handles),
			RatePerSec:    rc.rate,
			Seed:          rc.seed,
			WallMillis:    wall.Milliseconds(),
			Completed:     len(waits),
			Rejected:      failed + refused,
			ReHomed:       int(fs.ReHomed),
			Steals:        int(fs.Steals),
			DrainShard:    drain,
			WarmHits:      int(warm),
			WarmRate:      warmRate,
			P50Micros:     p50.Microseconds(),
			P99Micros:     p99.Microseconds(),

			TimingBackend: fleetTiming.Backend,
			MemoHitRate:   fleetTiming.HitRate(),
			FastSpeedup:   fleetSpeedup,
		}
		for i := range fs.Shards {
			sum.PerShard = append(sum.PerShard, shardSummary{
				Jobs:      perShardSubmits[i],
				Completed: int(fs.Shards[i].Completed),
			})
		}
		if sloOK {
			sum.SLO = &sloRep
		}
		if attrOK {
			sum.Attribution = &attr
		}
		if err := benchjson.Write(rc.jsonPath, sum); err != nil {
			return err
		}
	}
	if rc.tracePath != "" {
		if err := writeChromeTrace(rc.tracePath, f.TraceSnapshot(), f.TraceDropped()); err != nil {
			return err
		}
	}
	if rc.sloReport != "" {
		run := slo.RunReport{Seed: rc.seed, Jobs: len(waits), SLO: sloRep, Attribution: attr}
		if err := writeRunReport(rc.sloReport, run); err != nil {
			return err
		}
	}
	return writeMemProfile(rc.memprofile)
}

// serveTelemetry starts the -listen HTTP surface and returns its
// shutdown func (a no-op when the flag is unset).
func serveTelemetry(addr string, h http.Handler) func() {
	if addr == "" {
		return func() {}
	}
	srv := &http.Server{Addr: addr, Handler: h}
	fmt.Printf("telemetry:     listening on %s (/metrics, /trace, /debug/pprof/)\n", addr)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("telemetry listener: %v", err)
		}
	}()
	return func() { _ = srv.Close() }
}

// printSLO renders the error-budget standing, one line per series.
func printSLO(rep slo.Report) {
	if len(rep.Objectives) == 0 {
		return
	}
	fmt.Println("slo:")
	for _, st := range rep.Objectives {
		tenant := st.Tenant
		if tenant == "" {
			tenant = "*"
		}
		fmt.Printf("  %-4s %-12s %-11s  %7d good / %5d bad   budget %6.1f%%   burn %5.2fx fast / %5.2fx slow   p%g %s (target %s)\n",
			st.State, tenant, st.Class, st.Good, st.Bad, st.BudgetRemaining*100,
			st.BurnFast, st.BurnSlow, st.Percentile*100,
			time.Duration(st.ObservedUS)*time.Microsecond,
			time.Duration(st.TargetUS)*time.Microsecond)
	}
}

// printAttribution renders the critical-path breakdown, one line per
// segment.
func printAttribution(attr slo.Attribution) {
	if len(attr.Segments) == 0 {
		return
	}
	fmt.Printf("critical path: %s attributed over %d jobs (%d open, %d forward hops)\n",
		(time.Duration(attr.TotalUS) * time.Microsecond).Round(time.Millisecond),
		attr.Jobs, attr.Open, attr.Hops)
	for _, seg := range attr.Segments {
		fmt.Printf("  %-12s %5.1f%%   %12s over %d intervals\n",
			seg.Segment, seg.Share*100,
			(time.Duration(seg.TotalUS) * time.Microsecond).Round(time.Microsecond),
			seg.Count)
	}
}

// writeRunReport writes the combined SLO + attribution report (the
// artifact the CI regression gate diffs; byte-deterministic per seed
// with -virtual).
func writeRunReport(path string, rep slo.RunReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("slo report:    -> %s\n", path)
	return nil
}

// writeChromeTrace exports recorded lifecycle events to path as Chrome
// trace_event JSON, with the ring's drop count in the export metadata.
func writeChromeTrace(path string, events []vnpu.TraceEvent, dropped uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, events, dropped); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace:         %d lifecycle events -> %s (%d overwritten in the ring)\n", len(events), path, dropped)
	if dropped > 0 {
		fmt.Printf("trace:         WARNING: export is incomplete — %d events were overwritten before the flush; raise the ring with WithTraceBufferSize\n", dropped)
	}
	return nil
}

// writeMemProfile writes a heap profile to path after a GC pass, so the
// profile reflects retained memory rather than garbage.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// percentile returns the q-quantile of sorted durations by the
// nearest-rank (ceiling) method, so p99 never understates the tail.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
