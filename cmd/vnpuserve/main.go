// vnpuserve is the serving-path load generator: it drives a multi-chip
// vnpu.Cluster with a Poisson arrival trace of mixed model/topology jobs
// from many tenants and reports throughput, queueing-latency percentiles
// and per-chip utilization — the serving analogue of cmd/vnpu-experiments.
//
// Example:
//
//	vnpuserve -chips 4 -jobs 256 -rate 300 -tenants 8
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	var (
		chips    = flag.Int("chips", 4, "number of NPU chips in the cluster")
		chipName = flag.String("chip", "sim", "chip configuration: fpga, sim or sim48")
		jobs     = flag.Int("jobs", 256, "total jobs to submit")
		rate     = flag.Float64("rate", 300, "mean Poisson arrival rate in jobs/s (0 = open throttle)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = default)")
		quota    = flag.Int("quota", 0, "per-tenant in-flight quota (0 = unlimited)")
		tenants  = flag.Int("tenants", 8, "number of tenants generating load")
		iters    = flag.Int("iters", 1, "inference iterations per job")
		seed     = flag.Int64("seed", 1, "random seed for the arrival trace")
		confine  = flag.Bool("confine", false, "request NoC confinement for every job")
		hetero   = flag.Bool("hetero", false, "boot a mixed cluster: odd chips use the FPGA-scale config, so the cost model routes small jobs there")
		reuse    = flag.Bool("reuse", false, "enable the session pool: jobs lease resident vNPUs per (tenant, model, topology), skipping the create path on warm hits")
		jsonPath = flag.String("json", "", "write a machine-readable run summary (jobs/s, warm-hit rate, latency percentiles) to this file")
		verbose  = flag.Bool("v", false, "log every job completion")
	)
	flag.Parse()
	if err := run(*chips, *chipName, *jobs, *rate, *queue, *quota, *tenants, *iters, *seed, *confine, *hetero, *reuse, *jsonPath, *verbose); err != nil {
		log.Fatal(err)
	}
}

// summary is the -json run report, consumed by CI to track the serving
// trajectory (BENCH_session.json).
type summary struct {
	Chips       int     `json:"chips"`
	Jobs        int     `json:"jobs"`
	Failed      int     `json:"failed"`
	JobsPerSec  float64 `json:"jobs_per_s"`
	P50Micros   int64   `json:"p50_us"`
	P99Micros   int64   `json:"p99_us"`
	Reuse       bool    `json:"reuse"`
	WarmHitRate float64 `json:"warm_hit_rate"`
	WarmHits    uint64  `json:"warm_hits"`
	ColdCreates uint64  `json:"cold_creates"`
	Batched     uint64  `json:"batched"`
	Evicted     uint64  `json:"evicted"`
	PlaceHit    float64 `json:"placement_cache_hit_rate"`
}

// workloadMix pairs zoo models with topologies that fit the chip.
type workloadMix struct {
	model vnpu.Model
	topo  *vnpu.Topology
	shape string
}

func buildMix(cores int) ([]workloadMix, error) {
	type entry struct {
		model string
		topo  *vnpu.Topology
		shape string
	}
	var entries []entry
	if cores >= 36 {
		entries = []entry{
			{"alexnet", vnpu.Mesh(2, 2), "2x2"},
			{"mobilenet", vnpu.Chain(4), "1x4"},
			{"resnet18", vnpu.Mesh(2, 3), "2x3"},
			{"resnet34", vnpu.Mesh(3, 3), "3x3"},
			{"googlenet", vnpu.Mesh(2, 4), "2x4"},
			{"gpt2-small", vnpu.Mesh(3, 4), "3x4"},
		}
	} else {
		entries = []entry{
			{"alexnet", vnpu.Mesh(2, 2), "2x2"},
			{"mobilenet", vnpu.Chain(3), "1x3"},
			{"resnet18", vnpu.Mesh(2, 3), "2x3"},
			{"googlenet", vnpu.Mesh(2, 4), "2x4"},
		}
	}
	mixes := make([]workloadMix, len(entries))
	for i, e := range entries {
		m, err := vnpu.ModelByName(e.model)
		if err != nil {
			return nil, err
		}
		mixes[i] = workloadMix{model: m, topo: e.topo, shape: e.shape}
	}
	return mixes, nil
}

func run(chips int, chipName string, jobs int, rate float64, queue, quota, tenants, iters int, seed int64, confine, hetero, reuse bool, jsonPath string, verbose bool) error {
	var cfg vnpu.Config
	switch chipName {
	case "fpga":
		cfg = vnpu.FPGAConfig()
	case "sim":
		cfg = vnpu.SimConfig()
	case "sim48":
		cfg = vnpu.SimConfig48()
	default:
		return fmt.Errorf("unknown chip %q (want fpga, sim or sim48)", chipName)
	}
	var opts []vnpu.ClusterOption
	if queue > 0 {
		opts = append(opts, vnpu.WithQueueDepth(queue))
	} else {
		// Default: admit the whole trace so rejections only appear when
		// the operator asks for a tighter queue.
		opts = append(opts, vnpu.WithQueueDepth(jobs))
	}
	if quota > 0 {
		opts = append(opts, vnpu.WithTenantQuota(quota))
	}
	if reuse {
		opts = append(opts, vnpu.WithSessionReuse())
	}
	mixCores := cfg.Cores()
	kind := chipName
	if hetero {
		// Mixed fleet: odd chips boot the small FPGA-scale config. The
		// placement cost model routes jobs that fit both chip classes to
		// the cheap chips, keeping the big ones free for large topologies.
		specs := make([]vnpu.ChipSpec, chips)
		names := map[string]bool{}
		for i := range specs {
			if i%2 == 1 {
				specs[i] = vnpu.ChipSpec{Config: vnpu.FPGAConfig()}
			} else {
				specs[i] = vnpu.ChipSpec{Config: cfg}
			}
			if n := specs[i].Config.Cores(); n > mixCores {
				mixCores = n
			}
			names[specs[i].Config.Name] = true
		}
		// Label the fleet by what was actually booted: -chips 1 never
		// reaches an odd index, and -chip fpga -hetero is homogeneous.
		if len(names) > 1 {
			kind = chipName + "+fpga"
		}
		opts = append(opts, vnpu.WithChipProfiles(specs...))
	}
	cluster, err := vnpu.NewCluster(cfg, chips, opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	mixes, err := buildMix(mixCores)
	if err != nil {
		return err
	}
	var jobOpts []vnpu.Option
	if confine {
		jobOpts = append(jobOpts, vnpu.WithConfinement(true))
	}

	fmt.Printf("vnpuserve: %d chips (%s), %d jobs, %d tenants, rate %.0f jobs/s, quota %d\n",
		cluster.Chips(), kind, jobs, tenants, rate, quota)

	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	start := time.Now()
	handles := make([]*vnpu.Handle, 0, jobs)
	var rejectedQueue, rejectedQuota int
	for i := 0; i < jobs; i++ {
		if rate > 0 && i > 0 {
			time.Sleep(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		}
		mx := mixes[rng.Intn(len(mixes))]
		job := vnpu.Job{
			Tenant:     fmt.Sprintf("tenant-%02d", rng.Intn(tenants)),
			Model:      mx.model,
			Iterations: iters,
			Topology:   mx.topo,
			Options:    jobOpts,
			Reusable:   reuse,
		}
		h, err := cluster.Submit(ctx, job)
		switch {
		case err == nil:
			handles = append(handles, h)
		case errors.Is(err, vnpu.ErrQueueFull):
			rejectedQueue++
		case errors.Is(err, vnpu.ErrQuotaExceeded):
			rejectedQuota++
		default:
			return fmt.Errorf("submit %d: %w", i, err)
		}
	}

	var (
		waits  []time.Duration
		failed int
	)
	for i, h := range handles {
		rep, err := h.Wait(ctx)
		if err != nil {
			failed++
			if verbose {
				fmt.Fprintf(os.Stderr, "job %d failed: %v\n", i, err)
			}
			continue
		}
		waits = append(waits, rep.QueueWait)
		if verbose {
			fmt.Printf("job %3d %-24s chip %d  queued %8s  %8.1f FPS (TED %.1f)\n",
				i, rep.Tenant, rep.Chip, rep.QueueWait.Round(time.Microsecond), rep.FPS, rep.MapCost)
		}
	}
	wall := time.Since(start)

	stats := cluster.Stats()
	fmt.Printf("\ncompleted %d jobs (%d failed, %d shed on queue, %d shed on quota) in %s\n",
		len(waits), failed, rejectedQueue, rejectedQuota, wall.Round(time.Millisecond))
	if wall > 0 {
		fmt.Printf("throughput:    %.1f jobs/s\n", float64(len(waits))/wall.Seconds())
	}
	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		fmt.Printf("queueing:      p50 %s   p99 %s   max %s\n",
			percentile(waits, 0.50).Round(time.Microsecond),
			percentile(waits, 0.99).Round(time.Microsecond),
			waits[len(waits)-1].Round(time.Microsecond))
	}
	ps := cluster.PlacementStats()
	fmt.Printf("placement:     %d decisions, avg %s   cache %.1f%% hit (%d hit / %d miss, %d evicted)\n",
		ps.Placements, ps.AvgPlaceTime().Round(time.Microsecond),
		ps.HitRate()*100, ps.CacheHits, ps.CacheMisses, ps.CacheEvictions)
	ss := cluster.SessionStats()
	if reuse {
		fmt.Printf("sessions:      %.1f%% warm (%d warm / %d batched / %d cold)   avg acquire warm %s cold %s\n",
			ss.HitRate()*100, ss.WarmHits, ss.Batched, ss.ColdCreates,
			ss.AvgWarmTime().Round(time.Microsecond), ss.AvgColdTime().Round(time.Microsecond))
		fmt.Printf("               %d evicted (%d TTL, %d LRU, %d capacity pressure), %d resident at end\n",
			ss.Evicted(), ss.EvictedTTL, ss.EvictedLRU, ss.EvictedPressure,
			ss.IdleSessions+ss.BusySessions)
	}
	fmt.Println("per chip:")
	usage := cluster.CoreUsage()
	for i := 0; i < cluster.Chips(); i++ {
		busyPct := 0.0
		if wall > 0 {
			busyPct = float64(stats.ChipBusy[i]) / float64(wall) * 100
		}
		chipCfg := cluster.Chip(i).Config()
		fmt.Printf("  chip %d (%-5s %2d cores): %4d jobs   busy %5.1f%%   final core alloc %3.0f%%",
			i, chipCfg.Name, chipCfg.Cores(), stats.ChipJobs[i], busyPct, usage[i].AllocatedFraction()*100)
		if reuse {
			fmt.Printf(" (%d warm-held)", usage[i].WarmIdle)
		}
		fmt.Println()
	}
	if jsonPath != "" {
		sum := summary{
			Chips:       cluster.Chips(),
			Jobs:        len(waits),
			Failed:      failed,
			Reuse:       reuse,
			WarmHitRate: ss.HitRate(),
			WarmHits:    ss.WarmHits,
			ColdCreates: ss.ColdCreates,
			Batched:     ss.Batched,
			Evicted:     ss.Evicted(),
			PlaceHit:    ps.HitRate(),
		}
		if wall > 0 {
			sum.JobsPerSec = float64(len(waits)) / wall.Seconds()
		}
		if len(waits) > 0 {
			sum.P50Micros = percentile(waits, 0.50).Microseconds()
			sum.P99Micros = percentile(waits, 0.99).Microseconds()
		}
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d jobs failed", failed)
	}
	return nil
}

// percentile returns the q-quantile of sorted durations by the
// nearest-rank (ceiling) method, so p99 never understates the tail.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
