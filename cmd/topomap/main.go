// Command topomap visualizes virtual NPU core allocation on the physical
// mesh — the Fig 17 view of the paper: which strategy places a request
// where, around pre-occupied cores.
//
// Usage:
//
//	topomap -rows 5 -cols 5 -request 3x3 -occupied 0,24
//	topomap -rows 6 -cols 6 -request 13 -occupied 3,4,9,10,15,16 -strategy straightforward
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/vnpu-sim/vnpu/internal/core"
	"github.com/vnpu-sim/vnpu/internal/ged"
	"github.com/vnpu-sim/vnpu/internal/topo"
)

func main() {
	rows := flag.Int("rows", 6, "physical mesh rows")
	cols := flag.Int("cols", 6, "physical mesh cols")
	request := flag.String("request", "3x3", "requested topology: RxC mesh or a plain core count")
	occupied := flag.String("occupied", "", "comma-separated pre-occupied node IDs")
	strategy := flag.String("strategy", "", "one strategy only (default: show similar and straightforward)")
	flag.Parse()

	if err := run(*rows, *cols, *request, *occupied, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "topomap:", err)
		os.Exit(1)
	}
}

func run(rows, cols int, request, occupied, strategy string) error {
	phys := topo.Mesh2D(rows, cols)
	occ := map[topo.NodeID]bool{}
	if occupied != "" {
		for _, part := range strings.Split(occupied, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad occupied id %q", part)
			}
			occ[topo.NodeID(id)] = true
		}
	}
	var free []topo.NodeID
	for _, n := range phys.Nodes() {
		if !occ[n] {
			free = append(free, n)
		}
	}

	req, err := parseRequest(request)
	if err != nil {
		return err
	}
	fmt.Printf("physical mesh %dx%d, %d occupied, request: %d cores\n\n",
		rows, cols, len(occ), req.NumNodes())

	strategies := []core.Strategy{core.StrategySimilar, core.StrategyStraightforward}
	if strategy != "" {
		s, err := parseStrategy(strategy)
		if err != nil {
			return err
		}
		strategies = []core.Strategy{s}
	}
	for _, strat := range strategies {
		res, err := core.MapTopology(phys, free, req, strat, ged.Options{})
		if err != nil {
			fmt.Printf("%s: allocation failed: %v\n\n", strat, err)
			continue
		}
		fmt.Printf("%s mapping (edit distance %.1f, connected=%v):\n", strat, res.Cost, res.Connected)
		render(os.Stdout, phys, cols, occ, res.Nodes)
		fmt.Println()
	}
	return nil
}

// render draws the mesh: XX for occupied nodes, the virtual core number
// (from 1, as the paper's figures count) for allocated ones, and dots for
// free cores.
func render(w *os.File, phys *topo.Graph, cols int, occ map[topo.NodeID]bool, alloc []topo.NodeID) {
	vOf := map[topo.NodeID]int{}
	for v, n := range alloc {
		vOf[n] = v + 1
	}
	for _, n := range phys.Nodes() {
		c, _ := phys.CoordOf(n)
		switch {
		case occ[n]:
			fmt.Fprintf(w, " XX")
		case vOf[n] != 0:
			fmt.Fprintf(w, " %2d", vOf[n])
		default:
			fmt.Fprintf(w, "  .")
		}
		if c.X == cols-1 {
			fmt.Fprintln(w)
		}
	}
}

func parseRequest(s string) (*topo.Graph, error) {
	if r, c, ok := strings.Cut(s, "x"); ok {
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if err1 != nil || err2 != nil || rows < 1 || cols < 1 {
			return nil, fmt.Errorf("bad request %q", s)
		}
		return topo.Mesh2D(rows, cols), nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad request %q", s)
	}
	return topo.NearMesh(n), nil
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "similar":
		return core.StrategySimilar, nil
	case "exact":
		return core.StrategyExact, nil
	case "straightforward":
		return core.StrategyStraightforward, nil
	case "fragment":
		return core.StrategyFragment, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}
