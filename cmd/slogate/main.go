// slogate is the CI regression gate over the deterministic SLO +
// critical-path reports vnpuserve -virtual -sloreport emits: it diffs the
// current run's attribution profile and error-budget states against a
// committed baseline and fails on structural regressions — a lifecycle
// segment's share of total sojourn time doubling (map-park exploding, say),
// or any (tenant, class) series landing in a worse burn-rate state than
// the baseline recorded.
//
// The comparison is structural, not exact: byte-identity per seed is the
// determinism test's job, while slogate answers "did where-the-time-goes
// change shape" so intentional replays with new seeds or job counts still
// gate meaningfully.
//
// Example:
//
//	vnpuserve -shards 4 -virtual -sloreport BENCH_slo.json
//	slogate -baseline ci/slo_baseline.json -current BENCH_slo.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/vnpu-sim/vnpu/internal/obs/slo"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "ci/slo_baseline.json", "committed baseline run report (vnpuserve -sloreport)")
		currentPath  = flag.String("current", "", "current run report to gate")
		growth       = flag.Float64("growth", 2.0, "fail when a segment's share exceeds this multiple of the baseline share")
		slack        = flag.Float64("slack", 0.10, "absolute share growth always tolerated (new small segments, noise)")
		minShare     = flag.Float64("minshare", 0.01, "ignore segments below this share of total attributed time")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "slogate: -current is required")
		os.Exit(2)
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slogate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slogate: current: %v\n", err)
		os.Exit(2)
	}

	var failures []string

	// An empty current report means the taps broke, not that serving got
	// infinitely fast.
	if cur.Jobs == 0 || cur.Attribution.TotalUS == 0 {
		failures = append(failures, fmt.Sprintf(
			"current report attributes nothing (%d jobs, %dus total) — the observability taps regressed",
			cur.Jobs, cur.Attribution.TotalUS))
	}

	// Attribution shape: no segment may grow its share of the total
	// sojourn beyond growth x baseline (plus slack for segments too small
	// to have a stable baseline share).
	baseShare := map[string]float64{}
	for _, seg := range base.Attribution.Segments {
		baseShare[seg.Segment] = seg.Share
	}
	for _, seg := range cur.Attribution.Segments {
		if seg.Share < *minShare {
			continue
		}
		s0 := baseShare[seg.Segment]
		limit := s0 * *growth
		if alt := s0 + *slack; alt > limit {
			limit = alt
		}
		if seg.Share > limit {
			failures = append(failures, fmt.Sprintf(
				"segment %q share %.1f%% exceeds limit %.1f%% (baseline %.1f%%)",
				seg.Segment, seg.Share*100, limit*100, s0*100))
		}
	}

	// SLO states: no (tenant, class) series may be in a worse burn-rate
	// state than the baseline recorded for it. Series absent from the
	// baseline gate against ok — a new tenant must start healthy.
	baseState := map[string]string{}
	for _, st := range base.SLO.Objectives {
		k := st.Tenant + "\x00" + st.Class
		if slo.StateRank(st.State) > slo.StateRank(baseState[k]) {
			baseState[k] = st.State
		}
	}
	for _, st := range cur.SLO.Objectives {
		allowed, ok := baseState[st.Tenant+"\x00"+st.Class]
		if !ok {
			allowed = slo.StateOK
		}
		if slo.StateRank(st.State) > slo.StateRank(allowed) {
			failures = append(failures, fmt.Sprintf(
				"slo %s/%s state %q worse than baseline %q (budget %.1f%%, burn %.2fx fast / %.2fx slow)",
				st.Tenant, st.Class, st.State, allowed,
				st.BudgetRemaining*100, st.BurnFast, st.BurnSlow))
		}
	}

	if len(failures) > 0 {
		fmt.Printf("slogate: %d regression(s) against %s:\n", len(failures), *baselinePath)
		for _, f := range failures {
			fmt.Printf("  FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("slogate: ok — %d jobs, %d segments, %d slo series within baseline shape (%s)\n",
		cur.Jobs, len(cur.Attribution.Segments), len(cur.SLO.Objectives), *baselinePath)
}

func readReport(path string) (slo.RunReport, error) {
	var rep slo.RunReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
