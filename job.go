package vnpu

import (
	"context"
	"time"

	"github.com/vnpu-sim/vnpu/internal/sched"
)

// Job is one unit of serving work: run a model for a number of iterations
// on a virtual NPU of the requested topology. Submit it to a Cluster.
type Job struct {
	// Tenant identifies the submitter for quota accounting and reporting.
	// Empty means the shared "default" tenant.
	Tenant string
	// Model is the workload to run.
	Model Model
	// Iterations repeats the inference (0 means 1).
	Iterations int
	// Topology is the virtual NPU shape the job wants. It must not be
	// mutated after Submit — placement decisions (and their cache keys)
	// are computed from it while the job is in flight.
	Topology *Topology
	// Options tune the underlying Request (strategy, memory, confinement,
	// bandwidth caps, ...). Memory defaults to the model's footprint on
	// the requested core count.
	Options []Option
	// Reusable marks the job session-eligible: on a cluster with
	// WithSessionReuse, it runs on a resident vNPU leased per (tenant,
	// model, topology, options) — warm jobs skip placement, creation and
	// compilation, and bursts of identical jobs are continuously batched
	// back-to-back on one resident vNPU. Non-reusable jobs keep the
	// create/run/destroy path, though repeated identical submissions are
	// auto-promoted to the session path once the cluster has seen their
	// fingerprint before. Decode-phase transformer traffic is the
	// intended user; jobs with callback-based mapping options are never
	// pooled.
	Reusable bool
}

// request materializes the job's Request by layering its options.
func (j Job) request() Request {
	return NewRequest(j.Topology, j.Options...)
}

// tenant returns the quota-accounting key.
func (j Job) tenant() string {
	if j.Tenant == "" {
		return "default"
	}
	return j.Tenant
}

// JobReport extends the single-run Report with serving-side facts.
type JobReport struct {
	Report
	// Chip is the index of the chip that executed the job.
	Chip int
	// Tenant echoes the submitting tenant.
	Tenant string
	// Model echoes the workload's name.
	Model string
	// MapCost is the topology edit distance of the placement (0 = the
	// exact requested topology).
	MapCost float64
	// QueueWait is the wall-clock time the job spent queued before being
	// placed on its chip.
	QueueWait time.Duration
	// Warm reports that the job ran on an already-resident session vNPU
	// (warm lease or micro-queue batch) — no placement, create or
	// compile happened on its account.
	Warm bool
}

// Handle tracks one submitted job. Obtain one from Cluster.Submit, then
// Wait on it (or select on Done) for the JobReport.
type Handle struct {
	h *sched.Handle[JobReport]
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry only
// abandons the wait — the job keeps running; cancel the context passed to
// Submit to cancel the job itself.
func (h *Handle) Wait(ctx context.Context) (JobReport, error) {
	rep, err := h.h.Wait(ctx)
	if err != nil {
		return rep, err
	}
	rep.QueueWait = h.h.QueueWait()
	return rep, nil
}

// Done is closed when the job has finished (successfully or not).
func (h *Handle) Done() <-chan struct{} { return h.h.Done() }

// Started is closed when the job has been placed on a chip.
func (h *Handle) Started() <-chan struct{} { return h.h.Started() }

// Chip reports the chip the job was placed on (-1 before placement).
func (h *Handle) Chip() int { return h.h.Chip() }

// Tenant reports the submitting tenant.
func (h *Handle) Tenant() string { return h.h.Tenant() }

// QueueWait reports how long the job waited in the admission queue before
// reaching a chip (time so far, while still queued).
func (h *Handle) QueueWait() time.Duration { return h.h.QueueWait() }
