package vnpu

import (
	"context"
	"fmt"
	"time"

	"github.com/vnpu-sim/vnpu/internal/sched"
)

// Priority is a job's scheduling class. The cluster's scheduler core
// orders admission by class first (higher classes place first, on both
// serving paths), earliest deadline next, admission order last. Aging
// protects lower classes from starvation: a queued job is promoted one
// class after every WithAgingRounds scheduling rounds spent waiting, so
// even sustained PriorityCritical load cannot park a PriorityBestEffort
// job forever.
type Priority int

const (
	// PriorityDefault resolves to the cluster's default class (see
	// WithDefaultPriority; PriorityNormal unless overridden), so zero-value
	// Jobs keep their pre-priority behavior.
	PriorityDefault Priority = 0
	// PriorityBestEffort is the lowest class: batch and backfill traffic.
	PriorityBestEffort Priority = 1
	// PriorityNormal is the standard serving class.
	PriorityNormal Priority = 2
	// PriorityHigh is for latency-sensitive traffic.
	PriorityHigh Priority = 3
	// PriorityCritical is the top class: SLO-critical jobs that may
	// displace queued lower-class work.
	PriorityCritical Priority = 4
)

// NumPriorityClasses is the number of distinct scheduling classes
// (PriorityBestEffort through PriorityCritical).
const NumPriorityClasses = 4

// String names the class for reports.
func (p Priority) String() string {
	switch p {
	case PriorityDefault:
		return "default"
	case PriorityBestEffort:
		return "best-effort"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	case PriorityCritical:
		return "critical"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// class maps a resolved Priority onto the scheduler core's 0-based
// class index.
func (p Priority) class() int { return int(p) - 1 }

// priorityFromClass is the inverse of Priority.class.
func priorityFromClass(class int) Priority { return Priority(class + 1) }

// Job is one unit of serving work: run a model for a number of iterations
// on a virtual NPU of the requested topology. Submit it to a Cluster.
type Job struct {
	// Tenant identifies the submitter for quota accounting and reporting.
	// Empty means the shared "default" tenant.
	Tenant string
	// Model is the workload to run.
	Model Model
	// Iterations repeats the inference (0 means 1).
	Iterations int
	// Priority is the job's scheduling class (PriorityDefault resolves
	// to the cluster's default, normally PriorityNormal; tenants may be
	// capped with WithTenantPriorityCap). Higher classes are placed
	// first on both serving paths and may displace queued lower-class
	// work.
	Priority Priority
	// Deadline, when non-zero, is the job's scheduling SLO: within a
	// class, jobs place earliest-deadline-first, and a job still
	// unplaced when its deadline passes fails fast with
	// ErrDeadlineExceeded instead of occupying a chip late. The deadline
	// bounds time-to-placement, not completion — a job already running
	// is never killed by it (cancel the submission context for that).
	Deadline time.Time
	// Topology is the virtual NPU shape the job wants. It must not be
	// mutated after Submit — placement decisions (and their cache keys)
	// are computed from it while the job is in flight.
	Topology *Topology
	// Options tune the underlying Request (strategy, memory, confinement,
	// bandwidth caps, ...). Memory defaults to the model's footprint on
	// the requested core count.
	Options []Option
	// Reusable marks the job session-eligible: on a cluster with
	// WithSessionReuse, it runs on a resident vNPU leased per (tenant,
	// model, topology, options) — warm jobs skip placement, creation and
	// compilation, and bursts of identical jobs are continuously batched
	// back-to-back on one resident vNPU. Non-reusable jobs keep the
	// create/run/destroy path, though repeated identical submissions are
	// auto-promoted to the session path once the cluster has seen their
	// fingerprint before. Decode-phase transformer traffic is the
	// intended user; jobs with callback-based mapping options are never
	// pooled.
	Reusable bool

	// modelSig is the model's content fingerprint, resolved once at
	// Submit and threaded through so the execution paths can key the
	// compiled-program cache without rehashing the model per job.
	modelSig uint64

	// obsID is the job's lifecycle-trace identity, assigned at Submit
	// when tracing is on (0 otherwise) and preserved across fleet
	// forwarding so one job stays one trace track.
	obsID uint64
}

// request materializes the job's Request by layering its options.
func (j Job) request() Request {
	return NewRequest(j.Topology, j.Options...)
}

// tenant returns the quota-accounting key.
func (j Job) tenant() string {
	if j.Tenant == "" {
		return "default"
	}
	return j.Tenant
}

// JobReport extends the single-run Report with serving-side facts.
type JobReport struct {
	Report
	// Chip is the index of the chip that executed the job.
	Chip int
	// Tenant echoes the submitting tenant.
	Tenant string
	// Model echoes the workload's name.
	Model string
	// MapCost is the topology edit distance of the placement (0 = the
	// exact requested topology).
	MapCost float64
	// Priority is the job's resolved scheduling class (never
	// PriorityDefault: the cluster default and tenant caps are applied).
	Priority Priority
	// QueueWait is the wall-clock time the job spent queued before being
	// placed on its chip.
	QueueWait time.Duration
	// Warm reports that the job ran on an already-resident session vNPU
	// (warm lease or micro-queue batch) — no placement, create or
	// compile happened on its account.
	Warm bool
}

// Handle tracks one submitted job. Obtain one from Cluster.Submit, then
// Wait on it (or select on Done) for the JobReport.
type Handle struct {
	h *sched.Handle[JobReport]
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry only
// abandons the wait — the job keeps running; cancel the context passed to
// Submit to cancel the job itself.
func (h *Handle) Wait(ctx context.Context) (JobReport, error) {
	rep, err := h.h.Wait(ctx)
	if err != nil {
		return rep, err
	}
	rep.QueueWait = h.h.QueueWait()
	return rep, nil
}

// Done is closed when the job has finished (successfully or not).
func (h *Handle) Done() <-chan struct{} { return h.h.Done() }

// Started is closed when the job has been placed on a chip.
func (h *Handle) Started() <-chan struct{} { return h.h.Started() }

// Chip reports the chip the job was placed on (-1 before placement).
func (h *Handle) Chip() int { return h.h.Chip() }

// Tenant reports the submitting tenant.
func (h *Handle) Tenant() string { return h.h.Tenant() }

// QueueWait reports how long the job waited in the admission queue before
// reaching a chip (time so far, while still queued).
func (h *Handle) QueueWait() time.Duration { return h.h.QueueWait() }
