package vnpu

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"testing"
	"time"
)

// newReuseCluster boots a small cluster with the session pool on and a
// long TTL so tests control eviction themselves.
func newReuseCluster(t *testing.T, cfg Config, chips int, extra ...ClusterOption) *Cluster {
	t.Helper()
	opts := append([]ClusterOption{
		WithSessionReuse(),
		WithSessionIdleTTL(time.Hour),
	}, extra...)
	c, err := NewCluster(cfg, chips, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func submitWait(t *testing.T, c *Cluster, job Job) JobReport {
	t.Helper()
	h, err := c.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSessionWarmReuse(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	defer c.Close()

	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true}
	first := submitWait(t, c, job)
	if first.Warm {
		t.Fatal("first job cannot be warm")
	}
	second := submitWait(t, c, job)
	if !second.Warm {
		t.Fatal("second identical job must reuse the resident session")
	}
	if first.Cycles != second.Cycles {
		t.Fatalf("warm run changed cycles: %d vs %d", first.Cycles, second.Cycles)
	}
	s := c.SessionStats()
	if s.ColdCreates != 1 || s.WarmHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestSessionAutoPromotion(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	defer c.Close()

	// Not marked Reusable: the first submission takes the dispatcher
	// path, the repeated fingerprint promotes the second to the pool
	// (cold) and the third is warm.
	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2)}
	submitWait(t, c, job)
	if s := c.SessionStats(); s.Jobs() != 0 {
		t.Fatalf("first submission must not touch the pool: %+v", s)
	}
	submitWait(t, c, job)
	if s := c.SessionStats(); s.ColdCreates != 1 {
		t.Fatalf("second submission must be promoted: %+v", s)
	}
	rep := submitWait(t, c, job)
	if !rep.Warm {
		t.Fatal("third submission must be warm")
	}
}

func TestSessionEvictionUnderCapacityPressure(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	defer c.Close()

	// A reusable job occupies the whole 8-core chip, then idles warm.
	big := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4), Reusable: true}
	submitWait(t, c, big)
	usage := c.CoreUsage()[0]
	if usage.WarmIdle != 8 || usage.Active() != 0 {
		t.Fatalf("usage after warm idle: %+v", usage)
	}
	if c.Utilization()[0] != 1 {
		t.Fatal("warm cores must still count as allocated")
	}

	// A non-reusable job needs cores the warm session holds: placement
	// must reclaim the idle session instead of failing ErrNoCapacity.
	small := Job{Tenant: "u", Model: mustModel(t, "mobilenet"), Topology: Chain(3)}
	rep := submitWait(t, c, small)
	if rep.Warm {
		t.Fatal("dispatcher job cannot be warm")
	}
	s := c.SessionStats()
	if s.EvictedPressure < 1 {
		t.Fatalf("want a pressure eviction, got %+v", s)
	}
}

func TestSessionPoolPressureBetweenKeys(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	defer c.Close()

	// Session A holds the whole chip warm; a cold create for session B
	// must evict it.
	a := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4), Reusable: true}
	submitWait(t, c, a)
	b := Job{Tenant: "t", Model: mustModel(t, "googlenet"), Topology: Mesh(2, 4), Reusable: true}
	submitWait(t, c, b)
	s := c.SessionStats()
	if s.ColdCreates != 2 || s.EvictedPressure < 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSessionContinuousBatching(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	gate := make(chan struct{})
	c.testExecHook = func(int) { <-gate }
	defer c.Close()

	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true}
	h1, err := c.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Started() // session is busy (holder gated on the chip)
	h2, err := c.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// h2 must have attached to h1's session: release the gate for both.
	gate <- struct{}{}
	gate <- struct{}{}
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep2, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Warm {
		t.Fatal("micro-queued job must report warm")
	}
	s := c.SessionStats()
	if s.Batched != 1 || s.ColdCreates != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.WarmHits != 0 {
		t.Fatalf("batched job must not double-count as warm hit: %+v", s)
	}
}

func TestSessionCancelMicroQueuedJob(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	gate := make(chan struct{})
	c.testExecHook = func(int) { <-gate }
	defer c.Close()

	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true}
	h1, err := c.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Started()
	ctx, cancel := context.WithCancel(context.Background())
	h2, err := c.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // canceled while waiting in the micro-queue
	gate <- struct{}{}
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The canceled job must not have held the session: it is idle again.
	s := c.SessionStats()
	if s.BusySessions != 0 || s.IdleSessions != 1 {
		t.Fatalf("session not freed: %+v", s)
	}
}

func TestSessionCancelMidRunFreesChip(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	gate := make(chan struct{})
	c.testExecHook = func(int) { <-gate }
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Iterations: 64, Reusable: true}
	h, err := c.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	<-h.Started()
	cancel()    // canceled while gated on the chip, before the run loop
	close(gate) // let execution proceed into the simulator
	rep, err := h.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (rep %+v)", err, rep)
	}
	// A fresh submission still works: the chip was freed.
	c.testExecHook = nil
	submitWait(t, c, Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true})
}

// TestSessionPooledMatchesNonPooled is the equivalence property: the
// same sequential job sequence produces identical simulated cycle counts
// with and without session reuse — resident vNPUs and cached compiled
// programs are a serving optimization, not a semantic change.
func TestSessionPooledMatchesNonPooled(t *testing.T) {
	type step struct {
		model string
		topo  *Topology
	}
	steps := []step{
		{"alexnet", Mesh(2, 2)},
		{"resnet18", Mesh(2, 3)},
		{"alexnet", Mesh(2, 2)},
		{"mobilenet", Chain(4)},
		{"alexnet", Mesh(2, 2)},
		{"resnet18", Mesh(2, 3)},
		{"mobilenet", Chain(4)},
	}
	run := func(reuse bool) []int64 {
		var opts []ClusterOption
		if reuse {
			opts = append(opts, WithSessionReuse(), WithSessionIdleTTL(time.Hour))
		}
		c, err := NewCluster(SimConfig(), 2, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var cycles []int64
		for _, st := range steps {
			rep := submitWait(t, c, Job{
				Tenant:   "t",
				Model:    mustModel(t, st.model),
				Topology: st.topo,
				Reusable: true,
			})
			cycles = append(cycles, rep.Cycles)
		}
		return cycles
	}
	pooled := run(true)
	plain := run(false)
	for i := range steps {
		if pooled[i] != plain[i] {
			t.Fatalf("step %d (%s): pooled %d cycles, non-pooled %d",
				i, steps[i].model, pooled[i], plain[i])
		}
	}
}

// TestSessionChurnRace drives mixed reusable traffic from many tenants
// at a small cluster under capacity pressure; run with -race. It checks
// the serving invariants, not timing: every job resolves, and the pool
// drains cleanly on Close.
func TestSessionChurnRace(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 2,
		WithSessionMaxIdle(3), WithQueueDepth(256))
	models := []string{"alexnet", "mobilenet", "resnet18"}
	topos := []*Topology{Mesh(2, 2), Chain(3), Mesh(2, 3)}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (g + i) % len(models)
				job := Job{
					Tenant:   fmt.Sprintf("tenant-%d", g%3),
					Model:    mustModel(t, models[k]),
					Topology: topos[k],
					Reusable: i%2 == 0,
				}
				h, err := c.Submit(context.Background(), job)
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						errs <- err
					}
					continue
				}
				if _, err := h.Wait(context.Background()); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	s := c.SessionStats()
	if s.BusySessions != 0 || s.IdleSessions != 0 {
		t.Fatalf("sessions survived Close: %+v", s)
	}
}

// TestDispatcherReclaimsIdleSessionMemory exercises the Reclaim hook:
// an idle warm session holds most of the chip's HBM (but not its cores),
// so ranking accepts the chip and the failure only appears at create
// time, in the buddy allocator. The dispatcher must evict the idle
// session and retry instead of failing the job terminally.
func TestDispatcherReclaimsIdleSessionMemory(t *testing.T) {
	cfg := FPGAConfig()
	pool := uint64(1) << (63 - bits.LeadingZeros64(uint64(cfg.HBMCapacityBytes)))
	mem := pool/2 + pool/4 // 3/4 of the buddy pool: two such vNPUs cannot coexist
	c := newReuseCluster(t, cfg, 1)
	defer c.Close()

	m := mustModel(t, "alexnet")
	warm := Job{Tenant: "t", Model: m, Topology: Mesh(2, 2), Reusable: true,
		Options: []Option{WithMemory(mem)}}
	submitWait(t, c, warm)

	// 4 of 8 cores are free, so placement ranks the chip fine; only the
	// buddy allocator can reject this one.
	oneShot := Job{Tenant: "u", Model: m, Topology: Mesh(2, 2),
		Options: []Option{WithMemory(mem)}}
	submitWait(t, c, oneShot)
	if s := c.SessionStats(); s.EvictedPressure < 1 {
		t.Fatalf("want a pressure eviction for held memory, got %+v", s)
	}
}

func TestSessionQuotaSharedWithDispatcher(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1, WithTenantQuota(1))
	gate := make(chan struct{})
	c.testExecHook = func(int) { <-gate }
	defer c.Close()

	// One reusable job holds tenant t's single quota slot on the session
	// path...
	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true}
	h, err := c.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// ...so both paths must reject further t jobs: quota is one shared
	// counter, not per-path.
	if _, err := c.Submit(context.Background(), job); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("session path: want ErrQuotaExceeded, got %v", err)
	}
	oneShot := Job{Tenant: "t", Model: mustModel(t, "mobilenet"), Topology: Chain(3)}
	if _, err := c.Submit(context.Background(), oneShot); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("dispatcher path: want ErrQuotaExceeded, got %v", err)
	}
	// Another tenant is unaffected.
	if _, err := c.Submit(context.Background(), Job{Tenant: "u", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true}); err != nil {
		t.Fatalf("tenant u: %v", err)
	}
	close(gate)
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The finished job's slot frees: t can submit again.
	if _, err := c.Submit(context.Background(), job); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestSessionTTLExpiryReturnsCapacity(t *testing.T) {
	c, err := NewCluster(FPGAConfig(), 1,
		WithSessionReuse(), WithSessionIdleTTL(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	job := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true}
	submitWait(t, c, job)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := c.SessionStats(); s.EvictedTTL >= 1 && s.IdleSessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TTL eviction never happened: %+v", c.SessionStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Utilization()[0]; got != 0 {
		t.Fatalf("cores not returned after TTL eviction: %v", got)
	}
}

// TestSessionCannotPassOlderQueuedDispatcherJob is the admission-order
// fairness property: a session-eligible job may no longer overtake an
// older queued dispatcher job of equal priority — not even by batching
// onto its busy resident session. The scheduler core holds it in
// WaitTurn until the older job has been placed.
func TestSessionCannotPassOlderQueuedDispatcherJob(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	gate := make(chan struct{})
	c.testExecHook = func(int) { <-gate }
	defer c.Close()

	// R occupies the whole chip on the session path and blocks on the
	// exec hook.
	rJob := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4), Reusable: true}
	hR, err := c.Submit(context.Background(), rJob)
	if err != nil {
		t.Fatal(err)
	}
	<-hR.Started()

	// D is an older one-shot job that cannot place while R holds the
	// chip: it parks in the dispatcher.
	hD, err := c.Submit(context.Background(), Job{Tenant: "u", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4)})
	if err != nil {
		t.Fatal(err)
	}

	// W is a newer session job of R's class. Pre-fairness it would attach
	// to R's micro-queue and run before D; now it must wait its turn.
	hW, err := c.Submit(context.Background(), rJob)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if s := c.SessionStats(); s.Batched != 0 {
		t.Fatalf("session job batched past the queued dispatcher job: %+v", s)
	}

	// Release R: D must reclaim the idle session and take the chip; W
	// stays unstarted until D is done.
	gate <- struct{}{}
	select {
	case <-hD.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("queued dispatcher job never placed after the session went idle")
	}
	select {
	case <-hW.Started():
		t.Fatal("session job started before the older dispatcher job finished")
	case <-time.After(30 * time.Millisecond):
	}
	gate <- struct{}{} // release D
	if _, err := hD.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // release W (cold create after D freed the chip)
	repW, err := hW.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if repW.Warm {
		t.Fatal("W cannot be warm: fairness forced it behind D, whose reclaim evicted R's session")
	}
	if _, err := hR.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := c.SessionStats(); s.Batched != 0 {
		t.Fatalf("batching slipped past admission order: %+v", s)
	}
}

// TestSessionHigherClassPassesQueuedLowerClass: priority classes are the
// sanctioned overtaking lane — a high-priority session job batches onto
// a busy session ahead of queued best-effort one-shot work.
func TestSessionHigherClassPassesQueuedLowerClass(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	gate := make(chan struct{})
	c.testExecHook = func(int) { <-gate }
	defer c.Close()

	rJob := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4), Reusable: true, Priority: PriorityHigh}
	hR, err := c.Submit(context.Background(), rJob)
	if err != nil {
		t.Fatal(err)
	}
	<-hR.Started()
	hD, err := c.Submit(context.Background(), Job{
		Tenant: "u", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4), Priority: PriorityBestEffort,
	})
	if err != nil {
		t.Fatal(err)
	}
	hW, err := c.Submit(context.Background(), rJob)
	if err != nil {
		t.Fatal(err)
	}
	// W (high) passes D (best-effort): it attaches to R's busy session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := c.SessionStats(); s.Batched == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("high-class session job did not batch past best-effort queued work: %+v", c.SessionStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	gate <- struct{}{} // R finishes; its holder runs W next
	gate <- struct{}{} // W finishes
	repW, err := hW.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !repW.Warm {
		t.Fatal("batched high-class job must report warm")
	}
	gate <- struct{}{} // D finally runs
	if _, err := hD.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := hR.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionEvictionPrefersLowPriorityCluster: under capacity pressure
// the cluster evicts the low-priority warm session and keeps the
// high-priority one, even when the high one is least recently used.
func TestSessionEvictionPrefersLowPriorityCluster(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 1)
	defer c.Close()

	// High-class session first: pure LRU would make it the victim.
	high := Job{Tenant: "t", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Reusable: true, Priority: PriorityHigh}
	submitWait(t, c, high)
	low := Job{Tenant: "t", Model: mustModel(t, "googlenet"), Topology: Mesh(2, 2), Reusable: true, Priority: PriorityBestEffort}
	submitWait(t, c, low)

	// 8 cores all warm-held; a 3-core one-shot needs one eviction.
	oneShot := Job{Tenant: "u", Model: mustModel(t, "mobilenet"), Topology: Chain(3)}
	submitWait(t, c, oneShot)
	if s := c.SessionStats(); s.EvictedPressure < 1 {
		t.Fatalf("want a pressure eviction, got %+v", s)
	}
	// The high-priority session survived and serves warm.
	rep := submitWait(t, c, high)
	if !rep.Warm {
		t.Fatal("eviction took the high-priority session instead of the best-effort one")
	}
}

// TestPriorityChurnRace mixes priorities, deadlines and reusability
// across both serving paths from many goroutines; run with -race. It
// checks serving invariants: every job resolves (success, queue-full or
// a deadline miss), and the pool drains on Close.
func TestPriorityChurnRace(t *testing.T) {
	c := newReuseCluster(t, FPGAConfig(), 2,
		WithSessionMaxIdle(3), WithQueueDepth(256), WithAgingRounds(4))
	models := []string{"alexnet", "mobilenet", "resnet18"}
	topos := []*Topology{Mesh(2, 2), Chain(3), Mesh(2, 3)}
	prios := []Priority{PriorityBestEffort, PriorityNormal, PriorityHigh, PriorityCritical}

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := (g + i) % len(models)
				job := Job{
					Tenant:   fmt.Sprintf("tenant-%d", g%3),
					Model:    mustModel(t, models[k]),
					Topology: topos[k],
					Reusable: i%2 == 0,
					Priority: prios[(g+i)%len(prios)],
				}
				if i%3 == 0 {
					job.Deadline = time.Now().Add(30 * time.Second)
				}
				h, err := c.Submit(context.Background(), job)
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						errs <- err
					}
					continue
				}
				if _, err := h.Wait(context.Background()); err != nil &&
					!errors.Is(err, ErrDeadlineExceeded) {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if s := c.SessionStats(); s.BusySessions != 0 || s.IdleSessions != 0 {
		t.Fatalf("sessions survived Close: %+v", s)
	}
	// Per-class accounting covered both paths: everything submitted was
	// accounted completed or failed.
	ss := c.SchedStats()
	var sub, done uint64
	for _, cs := range ss.Classes {
		sub += cs.Submitted
		done += cs.Completed + cs.Failed
	}
	if sub == 0 || sub != done {
		t.Fatalf("per-class accounting leaked: submitted %d, resolved %d (%+v)", sub, done, ss.Classes)
	}
}
