// Quickstart: boot a large NPU chip, carve out a virtual NPU with a 3x4
// mesh topology, and run ResNet-18 inference on it.
package main

import (
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	// A 36-core inter-core connected NPU (Table 2's "SIM" configuration),
	// booted under hypervisor control.
	sys, err := vnpu.NewSystem(vnpu.SimConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Load the workload and size the virtual NPU's memory for it.
	model, err := vnpu.ModelByName("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	const cores = 12
	memBytes, err := sys.ModelMemoryBytes(model, cores)
	if err != nil {
		log.Fatal(err)
	}

	// Request a 3x4-mesh virtual NPU. The hypervisor maps the virtual
	// topology onto free physical cores (best-effort minimum topology edit
	// distance), builds the routing tables and the range translation
	// table, and confines NoC traffic to the allocated cores.
	v, err := sys.Create(vnpu.Request{
		Topology:    vnpu.Mesh(3, 4),
		Confined:    true,
		MemoryBytes: memBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual NPU %d: %d cores on physical nodes %v (edit distance %.0f)\n",
		v.ID(), v.NumCores(), v.Nodes(), v.MapCost())
	fmt.Printf("chip utilization: %.0f%%\n", sys.Utilization()*100)

	// Run 8 inferences. The compiler pipelines ResNet-18's layers across
	// the 12 virtual cores; intermediate activations travel over the NoC.
	rep, err := sys.RunModel(v, model, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm-up: %d clk (weights -> scratchpads)\n", rep.WarmupCycles)
	fmt.Printf("execution: %d clk for %d inferences\n", rep.Cycles, rep.Iterations)
	fmt.Printf("throughput: %.1f FPS at %d MHz\n", rep.FPS, sys.Config().FreqMHz)
}
