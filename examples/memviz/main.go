// Memviz: compares the memory virtualization mechanisms of the paper on a
// weight-streaming workload (the Fig 14 experiment at example scale).
//
// On small-scratchpad chips, model weights stream from global memory every
// iteration, so every 512-byte DMA burst needs an address translation.
// Page-based IOTLBs stall the burst pipeline on walks; vChunk's range
// translation table covers whole tensors with single entries and stays out
// of the way.
package main

import (
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	model, err := vnpu.ModelByName("resnet18")
	if err != nil {
		log.Fatal(err)
	}

	type config struct {
		name        string
		translation vnpu.TranslationMode
		tlbEntries  int
	}
	configs := []config{
		{"physical (no translation)", vnpu.TranslationNone, 0},
		{"vChunk range translation", vnpu.TranslationRange, 0},
		{"page IOTLB, 32 entries", vnpu.TranslationPage, 32},
		{"page IOTLB, 4 entries", vnpu.TranslationPage, 4},
	}

	fmt.Printf("workload: %s (%d MB weights, streamed every iteration)\n\n",
		model.Name, model.WeightBytes()>>20)

	var baseline float64
	for _, c := range configs {
		fps, err := measure(model, c.translation, c.tlbEntries)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = fps
		}
		fmt.Printf("%-28s %8.2f FPS  (%.1f%% of physical)\n", c.name, fps, fps/baseline*100)
	}
	fmt.Println("\nvChunk keeps translation off the critical path; small page TLBs")
	fmt.Println("stall the DMA burst pipeline on every page walk (paper Fig 14).")
}

// measure runs the model on a fresh FPGA-scale chip (8 cores, 512 KiB
// scratchpads: weights must stream) under one translation mechanism.
func measure(model vnpu.Model, mode vnpu.TranslationMode, tlbEntries int) (float64, error) {
	sys, err := vnpu.NewSystem(vnpu.FPGAConfig())
	if err != nil {
		return 0, err
	}
	memBytes, err := sys.ModelMemoryBytes(model, 8)
	if err != nil {
		return 0, err
	}
	v, err := sys.Create(vnpu.Request{
		Topology:       vnpu.Mesh(2, 4),
		MemoryBytes:    memBytes,
		Translation:    mode,
		PageTLBEntries: tlbEntries,
	})
	if err != nil {
		return 0, err
	}
	rep, err := sys.RunModel(v, model, 2)
	if err != nil {
		return 0, err
	}
	return rep.FPS, nil
}
