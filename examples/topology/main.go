// Topology: demonstrates the paper's topology lock-in problem (§4.3) and
// how best-effort similar-topology mapping solves it.
//
// Two tenants each request a 3x3 mesh from a 5x5 chip. After the first
// allocation, no intact 3x3 rectangle remains — exact mapping fails even
// though 16 cores sit idle. The similar strategy still serves the second
// tenant with a nearby topology at a small edit distance.
package main

import (
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	cfg := vnpu.SimConfig()
	cfg.MeshRows, cfg.MeshCols = 5, 5 // the paper's 5x5 example chip
	sys, err := vnpu.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Tenant 1: an exact 3x3 succeeds on the empty chip.
	first, err := sys.Create(vnpu.Request{
		Topology: vnpu.Mesh(3, 3),
		Strategy: vnpu.StrategyExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant 1 (exact): cores %v, edit distance %.0f\n", first.Nodes(), first.MapCost())

	// Tenant 2: exact mapping hits topology lock-in...
	_, err = sys.Create(vnpu.Request{
		Topology: vnpu.Mesh(3, 3),
		Strategy: vnpu.StrategyExact,
	})
	fmt.Printf("tenant 2 (exact): %v\n", err)
	fmt.Printf("  -> %d cores idle but unusable under exact mapping\n", sys.FreeCores())

	// ...while similar-topology mapping serves it best-effort.
	second, err := sys.Create(vnpu.Request{
		Topology: vnpu.Mesh(3, 3),
		Strategy: vnpu.StrategySimilar,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant 2 (similar): cores %v, edit distance %.0f, connected=%v\n",
		second.Nodes(), second.MapCost(), second.Connected())
	fmt.Printf("chip utilization: %.0f%% (the paper's lock-in example wastes 64%%)\n",
		sys.Utilization()*100)

	// Measure what the imperfect topology costs: run the same model on an
	// exact 3x3 and on the best-effort shape.
	model, err := vnpu.ModelByName("yololite")
	if err != nil {
		log.Fatal(err)
	}
	fpsExact, err := runOn(vnpu.StrategyExact, model, false)
	if err != nil {
		log.Fatal(err)
	}
	fpsSimilar, err := runOn(vnpu.StrategySimilar, model, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on an exact 3x3: %.1f FPS; on the best-effort shape: %.1f FPS (%.1f%% cost)\n",
		model.Name, fpsExact, fpsSimilar, (fpsExact/fpsSimilar-1)*100)
}

// runOn measures the model on a fresh 5x5 chip, optionally pre-occupying a
// 3x3 corner first (tenant 1's footprint), using the given strategy for a
// 3x3 request.
func runOn(strategy vnpu.Strategy, model vnpu.Model, preOccupy bool) (float64, error) {
	cfg := vnpu.SimConfig()
	cfg.MeshRows, cfg.MeshCols = 5, 5
	sys, err := vnpu.NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	if preOccupy {
		if _, err := sys.Create(vnpu.Request{Topology: vnpu.Mesh(3, 3), Strategy: vnpu.StrategyExact}); err != nil {
			return 0, err
		}
	}
	memBytes, err := sys.ModelMemoryBytes(model, 9)
	if err != nil {
		return 0, err
	}
	v, err := sys.Create(vnpu.Request{
		Topology:    vnpu.Mesh(3, 3),
		Strategy:    strategy,
		Confined:    true,
		MemoryBytes: memBytes,
	})
	if err != nil {
		return 0, err
	}
	rep, err := sys.RunModel(v, model, 4)
	if err != nil {
		return 0, err
	}
	return rep.FPS, nil
}
