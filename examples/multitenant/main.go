// Multitenant: two tenants share one 36-core chip — a GPT-2 service and a
// ResNet-34 vision service — each in its own virtual NPU with confined NoC
// routing, the Fig 16 scenario of the paper.
//
// The example shows the utilization upside of flexible topologies: the
// tenants ask for exactly the cores they need (12 + 24 = the whole chip),
// something fixed MIG-style partitions cannot do.
package main

import (
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	sys, err := vnpu.NewSystem(vnpu.SimConfig())
	if err != nil {
		log.Fatal(err)
	}

	gpt, err := vnpu.ModelByName("gpt2-small")
	if err != nil {
		log.Fatal(err)
	}
	resnet, err := vnpu.ModelByName("resnet34")
	if err != nil {
		log.Fatal(err)
	}

	// Tenant A: a 3x4 virtual NPU for GPT-2 small.
	gptMem, err := sys.ModelMemoryBytes(gpt, 12)
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Create(vnpu.Request{
		Topology:    vnpu.Mesh(3, 4),
		Confined:    true,
		MemoryBytes: gptMem,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Tenant B: a 4x6 virtual NPU for ResNet-34 on the remaining cores.
	rnMem, err := sys.ModelMemoryBytes(resnet, 24)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.Create(vnpu.Request{
		Topology:    vnpu.Mesh(4, 6),
		Confined:    true,
		MemoryBytes: rnMem,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant A: vNPU %d, %d cores at %v\n", a.ID(), a.NumCores(), a.Nodes())
	fmt.Printf("tenant B: vNPU %d, %d cores at %v\n", b.ID(), b.NumCores(), b.Nodes())
	fmt.Printf("chip utilization: %.0f%% (a fixed 18+18 MIG split would strand 6 cores\n", sys.Utilization()*100)
	fmt.Println("and time-share the other tenant; see cmd/vnpu-experiments -run fig16)")

	repA, err := sys.RunModel(a, gpt, 4)
	if err != nil {
		log.Fatal(err)
	}
	repB, err := sys.RunModel(b, resnet, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant A (%s): %.2f FPS\n", gpt.Name, repA.FPS)
	fmt.Printf("tenant B (%s): %.2f FPS\n", resnet.Name, repB.FPS)

	// Tear down tenant A; its cores and memory return to the pool.
	if err := sys.Destroy(a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after tenant A leaves: %d cores free, utilization %.0f%%\n",
		sys.FreeCores(), sys.Utilization()*100)
}
