// Multitenant: a GPT-2 service and a ResNet-34 vision service share a
// two-chip cluster through the serving API — the Fig 16 scenario of the
// paper, grown from one chip to a concurrent multi-chip front-end.
//
// Each tenant submits jobs asynchronously; the cluster places every job on
// the chip whose free cores match its topology best, applies a per-tenant
// in-flight quota, and reports where each job ran and how long it queued.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	cluster, err := vnpu.NewCluster(vnpu.SimConfig(), 2,
		vnpu.WithQueueDepth(32),
		vnpu.WithTenantQuota(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	gpt, err := vnpu.ModelByName("gpt2-small")
	if err != nil {
		log.Fatal(err)
	}
	resnet, err := vnpu.ModelByName("resnet34")
	if err != nil {
		log.Fatal(err)
	}

	// Both tenants submit a burst of jobs up front; Submit returns
	// immediately with a handle per job.
	ctx := context.Background()
	var handles []*vnpu.Handle
	for i := 0; i < 3; i++ {
		h, err := cluster.Submit(ctx, vnpu.Job{
			Tenant:     "llm",
			Model:      gpt,
			Iterations: 2,
			Topology:   vnpu.Mesh(3, 4),
			Options:    []vnpu.Option{vnpu.WithConfinement(true)},
		})
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)

		h, err = cluster.Submit(ctx, vnpu.Job{
			Tenant:     "vision",
			Model:      resnet,
			Iterations: 2,
			Topology:   vnpu.Mesh(4, 6),
			Options:    []vnpu.Option{vnpu.WithConfinement(true)},
		})
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}

	// A fourth in-flight job for the same tenant trips its quota — the
	// admission-control errors are typed and errors.Is-matchable.
	h4, err := cluster.Submit(ctx, vnpu.Job{
		Tenant: "llm", Model: gpt, Topology: vnpu.Mesh(3, 4),
	})
	switch {
	case errors.Is(err, vnpu.ErrQuotaExceeded):
		fmt.Println("llm's 4th concurrent job was shed: quota of 3 in flight")
	case err == nil:
		// An earlier llm job already drained, so the quota had room.
		fmt.Println("llm's 4th job was admitted (an earlier one already finished)")
		handles = append(handles, h4)
	default:
		log.Fatal(err)
	}

	for _, h := range handles {
		rep, err := h.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-12s chip %d  queued %10s  %7.2f FPS\n",
			rep.Tenant, rep.Model, rep.Chip, rep.QueueWait, rep.FPS)
	}

	stats := cluster.Stats()
	fmt.Printf("served %d jobs (%d shed): chip0 ran %d, chip1 ran %d\n",
		stats.Completed, stats.RejectedQuota, stats.ChipJobs[0], stats.ChipJobs[1])
}
