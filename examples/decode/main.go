// Decode: serves the decode phase of a GPT-2 style model on a virtual NPU
// with a fixed-size KV-cache buffer reserved in every core's scratchpad —
// the §7 extension of the paper.
//
// The decode phase generates one token at a time against the cached keys
// and values of the context; every matmul has M=1, so the phase is
// memory-bound (§2.2) and the KV cache must live on-chip.
package main

import (
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

func main() {
	const blocks, dim, kvLen = 12, 768, 256
	// Even across 36 cores the heaviest pipeline stages exceed half a
	// scratchpad, so weights stream from HBM on every token: each weight
	// byte is used once per token, which is exactly what makes decode
	// memory-bound (0.53 FLOPs per weight byte below).
	const cores = 36

	model := vnpu.DecodeModel(blocks, dim, kvLen)
	kvPerCore := vnpu.KVBufferBytesPerCore(blocks, dim, kvLen, cores)

	sys, err := vnpu.NewSystem(vnpu.SimConfig())
	if err != nil {
		log.Fatal(err)
	}
	memBytes, err := sys.ModelMemoryBytes(model, cores)
	if err != nil {
		log.Fatal(err)
	}
	v, err := sys.Create(vnpu.Request{
		Topology:      vnpu.Mesh(6, 6),
		Confined:      true,
		MemoryBytes:   memBytes,
		KVBufferBytes: kvPerCore,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decode vNPU: %d cores, %d KiB KV buffer per core\n",
		v.NumCores(), v.KVBufferBytes()>>10)

	// Each iteration is one generated token.
	const tokens = 16
	rep, err := sys.RunModel(v, model, tokens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tokens in %d clk: %.1f tokens/s (weights streamed: %v)\n",
		tokens, rep.Cycles, rep.FPS, rep.Streaming)
	fmt.Printf("decode arithmetic intensity: %.2f FLOPs/weight-byte (memory-bound)\n",
		model.ArithmeticIntensity())

	// An oversized context would not fit the scratchpad: the hypervisor
	// rejects the reservation instead of corrupting the weight zone.
	tooBig := vnpu.KVBufferBytesPerCore(blocks, dim, 1<<20, cores)
	_, err = sys.Create(vnpu.Request{
		Topology:      vnpu.Mesh(2, 2),
		KVBufferBytes: tooBig,
	})
	fmt.Printf("requesting a %d MiB KV buffer: %v\n", tooBig>>20, err)
}
