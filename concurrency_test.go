package vnpu

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/vnpu-sim/vnpu/internal/topo"
)

// execBarrier returns a testExecHook that blocks every execution until n
// of them are in flight at once — deterministic proof that jobs overlap
// on the chip, not just in the queue.
func execBarrier(n int) func(int) {
	var mu sync.Mutex
	arrived := 0
	done := make(chan struct{})
	return func(int) {
		mu.Lock()
		arrived++
		ok := arrived == n
		mu.Unlock()
		if ok {
			close(done)
		}
		<-done
	}
}

// soloCycles runs one job alone on a fresh single-chip cluster and
// returns its simulated cycle count.
func soloCycles(t *testing.T, job Job, opts ...ClusterOption) int64 {
	t.Helper()
	c, err := NewCluster(SimConfig(), 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep.Cycles
}

// TestOverlappedExecutionCycleIdentical is the timing-isolation property
// behind spatial concurrency: a vNPU executing overlapped with disjoint
// neighbors reports exactly the cycle count it reports alone on the
// chip. Each job runs in its own timing domain, so neighbors share no
// transient NoC or HBM calendar state. Covered for both execution
// paths; run it under -race to also exercise the memory-safety claim.
func TestOverlappedExecutionCycleIdentical(t *testing.T) {
	const overlap = 3
	job := Job{Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Iterations: 2}

	t.Run("dispatcher", func(t *testing.T) {
		want := soloCycles(t, job)
		c, err := NewCluster(SimConfig(), 1, WithChipSlots(overlap))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.testExecHook = execBarrier(overlap)
		handles := make([]*Handle, overlap)
		for i := range handles {
			j := job
			j.Tenant = fmt.Sprintf("t%d", i)
			h, err := c.Submit(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			rep, err := h.Wait(context.Background())
			if err != nil {
				t.Fatalf("job %d: %v", i, err)
			}
			if rep.Cycles != want {
				t.Errorf("job %d: %d cycles overlapped, want %d (solo)", i, rep.Cycles, want)
			}
		}
		if s := c.Stats(); s.ExecOverlapAvg <= 1 {
			t.Fatalf("barrier held %d jobs but ExecOverlapAvg = %v — executions did not overlap", overlap, s.ExecOverlapAvg)
		}
	})

	t.Run("session", func(t *testing.T) {
		reusable := job
		reusable.Reusable = true
		want := soloCycles(t, reusable, WithSessionReuse())
		c, err := NewCluster(SimConfig(), 1, WithSessionReuse())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.testExecHook = execBarrier(overlap)
		handles := make([]*Handle, overlap)
		for i := range handles {
			j := reusable
			j.Tenant = fmt.Sprintf("t%d", i)
			h, err := c.Submit(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			rep, err := h.Wait(context.Background())
			if err != nil {
				t.Fatalf("job %d: %v", i, err)
			}
			if rep.Cycles != want {
				t.Errorf("job %d: %d cycles overlapped, want %d (solo)", i, rep.Cycles, want)
			}
		}
		if s := c.Stats(); s.ExecOverlapAvg <= 1 {
			t.Fatalf("barrier held %d jobs but ExecOverlapAvg = %v — executions did not overlap", overlap, s.ExecOverlapAvg)
		}
	})
}

// TestConcurrentChurnBothPaths hammers both execution paths with enough
// in-flight jobs to keep 3+ vNPUs executing per chip, mixing one-shot
// and session traffic — the -race workout for the timing-domain
// machinery (private calendars, region claims, occupancy accounting,
// domain open/close across session churn).
func TestConcurrentChurnBothPaths(t *testing.T) {
	c, err := NewCluster(SimConfig(), 2, WithSessionReuse(), WithChipSlots(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const jobs = 48
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		job := Job{
			Tenant:   fmt.Sprintf("t%d", i%6),
			Model:    mustModel(t, "alexnet"),
			Topology: Mesh(2, 2),
			Reusable: i%2 == 0,
		}
		if i%3 == 0 {
			job.Topology = Chain(4)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := c.Submit(context.Background(), job)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = h.Wait(context.Background())
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.Completed != jobs || s.Failed != 0 {
		t.Fatalf("stats %+v, want %d completed", s, jobs)
	}
	// The occupancy integral must stay a true occupancy: overlapped
	// executions may not push any chip's busy time past elapsed time.
	for i, busy := range s.ChipBusy {
		if busy > wall {
			t.Fatalf("chip %d: busy %v exceeds wall %v — occupancy integral double-counts", i, busy, wall)
		}
	}
}

// TestRegionClaimsSerializeOverlap pins the safety net: claims over
// intersecting core sets execute one at a time, while disjoint claims
// pass straight through.
func TestRegionClaimsSerializeOverlap(t *testing.T) {
	r := newChipRegions()
	first := r.acquire([]topo.NodeID{0, 1})
	disjoint := make(chan struct{})
	go func() {
		r.release(r.acquire([]topo.NodeID{2, 3}))
		close(disjoint)
	}()
	select {
	case <-disjoint:
	case <-time.After(5 * time.Second):
		t.Fatal("disjoint claim blocked behind an unrelated region")
	}

	acquired := make(chan struct{})
	go func() {
		r.release(r.acquire([]topo.NodeID{1, 2}))
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("intersecting claim acquired while the region was held")
	case <-time.After(50 * time.Millisecond):
	}
	r.release(first)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("intersecting claim never acquired after release")
	}
}
