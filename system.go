package vnpu

import (
	"context"
	"fmt"

	"github.com/vnpu-sim/vnpu/internal/core"
	"github.com/vnpu-sim/vnpu/internal/isa"
	"github.com/vnpu-sim/vnpu/internal/npu"
	"github.com/vnpu-sim/vnpu/internal/timing"
	"github.com/vnpu-sim/vnpu/internal/workload"
)

// System is a physical NPU chip under hypervisor control — the top-level
// object applications interact with.
type System struct {
	dev *npu.Device
	hv  *core.Hypervisor
	// timing is the backend every RunCompiled outcome flows through
	// (nil = the analytic reference, with zero indirection overhead).
	// Set before serving traffic; not synchronized against in-flight runs.
	timing timing.Backend
}

// NewSystem boots a chip with the given configuration and takes hypervisor
// ownership of it (hyper mode, meta zones).
func NewSystem(cfg Config) (*System, error) {
	dev, err := npu.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	hv, err := core.NewHypervisor(dev)
	if err != nil {
		return nil, err
	}
	return &System{dev: dev, hv: hv}, nil
}

// Config returns the chip configuration.
func (s *System) Config() Config { return s.dev.Config() }

// Create allocates a virtual NPU. A request without MemoryBytes gets no
// global memory, so a workload cannot run on it — size the request with
// ModelMemoryBytes (Cluster jobs are sized automatically). Create is safe
// for concurrent use; failures wrap the package's typed errors
// (ErrNoCapacity, ErrTopologyUnsatisfiable, ErrMemoryExceeded).
func (s *System) Create(req Request) (*VirtualNPU, error) {
	return s.hv.CreateVNPU(req)
}

// Destroy releases a virtual NPU's cores, memory and meta tables.
func (s *System) Destroy(v *VirtualNPU) error { return s.hv.Destroy(v.ID()) }

// Utilization reports the fraction of physical cores currently allocated.
func (s *System) Utilization() float64 { return s.hv.Utilization() }

// FreeCores reports how many cores remain unallocated.
func (s *System) FreeCores() int { return len(s.hv.FreeCores()) }

// VirtualNPUs lists live virtual NPUs in creation order.
func (s *System) VirtualNPUs() []*VirtualNPU { return s.hv.VNPUs() }

// Report summarizes one workload execution.
type Report struct {
	// Cycles is the total makespan of all iterations.
	Cycles int64
	// Iterations echoes the run length.
	Iterations int
	// FPS is inference throughput at the chip clock.
	FPS float64
	// WarmupCycles is the initial weight-load time through the virtual
	// NPU's memory interfaces.
	WarmupCycles int64
	// Streaming reports whether weights were re-streamed every iteration
	// (small-scratchpad regime) or stayed resident after warm-up.
	Streaming bool
}

// RunModel compiles the model for the virtual NPU (pipelining its layers
// over the virtual cores) and executes iters inferences, returning the
// performance report.
//
// RunModel requires the virtual NPU to have enough memory for the model's
// weights and I/O — a shortfall fails with ErrMemoryExceeded. A vNPU
// created without Request.MemoryBytes cannot hold any; size the request
// with System.ModelMemoryBytes before Create.
func (s *System) RunModel(v *VirtualNPU, m Model, iters int) (Report, error) {
	return s.RunModelContext(context.Background(), v, m, iters)
}

// RunModelContext is RunModel with cancellation: the simulator's
// execution loop polls ctx between timeline events and aborts with its
// error, so canceling a long-running job frees the chip promptly rather
// than after the full simulated workload.
func (s *System) RunModelContext(ctx context.Context, v *VirtualNPU, m Model, iters int) (Report, error) {
	cm, err := s.CompileFor(v, m)
	if err != nil {
		return Report{}, err
	}
	return s.RunCompiled(ctx, v, cm, iters)
}

// CompiledModel is a model compiled for one specific virtual NPU: its
// instruction streams address the vNPU's core count and guest memory
// base. A resident session reuses it across jobs (compile-once), which
// is only sound on the vNPU it was compiled for — RunCompiled enforces
// that.
type CompiledModel struct {
	prog        *isa.Program
	model       string
	cores       int
	vaBase      uint64
	memBytes    uint64
	weightBytes int64
	streaming   bool
}

// Model reports the compiled model's name.
func (cm *CompiledModel) Model() string { return cm.model }

// Streaming reports whether the compiled program re-streams weights
// every iteration (small-scratchpad regime).
func (cm *CompiledModel) Streaming() bool { return cm.streaming }

// CompileFor compiles the model for the given virtual NPU, validating
// that the vNPU's memory holds the compiled footprint (ErrMemoryExceeded
// otherwise). The result can be executed any number of times with
// RunCompiled — the serving layer's resident sessions compile once per
// (session, model) and skip this cost on every warm job.
func (s *System) CompileFor(v *VirtualNPU, m Model) (*CompiledModel, error) {
	prog, info, err := workload.Compile(m, workload.CompileOptions{
		Cores:           v.NumCores(),
		VABase:          v.MemBase(),
		WeightZoneBytes: s.weightZone(),
	})
	if err != nil {
		return nil, err
	}
	if uint64(info.MemBytes) > v.MemBytes() {
		return nil, fmt.Errorf("vnpu: model %q needs %d bytes, vNPU has %d (set Request.MemoryBytes, e.g. from System.ModelMemoryBytes): %w",
			m.Name, info.MemBytes, v.MemBytes(), ErrMemoryExceeded)
	}
	return &CompiledModel{
		prog:        prog,
		model:       m.Name,
		cores:       v.NumCores(),
		vaBase:      v.MemBase(),
		memBytes:    info.MemBytes,
		weightBytes: m.WeightBytes(),
		streaming:   info.Streaming,
	}, nil
}

// SetTimingBackend installs the timing backend every later RunCompiled
// flows through (nil restores the direct analytic path). The cluster
// wires WithTimingBackend through here; direct System users may call it
// themselves. Install before running traffic — the field is read
// without synchronization on the execution paths.
func (s *System) SetTimingBackend(b timing.Backend) { s.timing = b }

// TimingBackendName reports the active backend ("analytic" when none is
// installed).
func (s *System) TimingBackendName() string {
	if s.timing == nil {
		return "analytic"
	}
	return s.timing.Name()
}

// RunCompiled executes a precompiled model on the virtual NPU it was
// compiled for; a mismatched vNPU (different core count or memory base)
// is rejected rather than silently mis-addressed.
//
// The run's timing outcome flows through the system's timing backend
// (SetTimingBackend): the default analytic backend always walks the
// full simulation, while the fast backend may replay a memoized result
// when the run is memoable — executing inside the vNPU's private timing
// domain (freshly reset by the caller via ResetForRun), where the
// outcome is a pure function of (program, geometry, iterations).
func (s *System) RunCompiled(ctx context.Context, v *VirtualNPU, cm *CompiledModel, iters int) (Report, error) {
	if cm.cores != v.NumCores() || cm.vaBase != v.MemBase() {
		return Report{}, fmt.Errorf("vnpu: model %q was compiled for %d cores at VA 0x%x, vNPU has %d cores at 0x%x",
			cm.model, cm.cores, cm.vaBase, v.NumCores(), v.MemBase())
	}
	simulate := func() (npu.Result, error) {
		return s.dev.Run(cm.prog, v.Placement(), v.Fabric(), npu.RunOptions{Iterations: iters, Ctx: ctx})
	}
	var res npu.Result
	var err error
	if s.timing == nil {
		res, err = simulate()
	} else {
		keyIters := iters
		if keyIters <= 0 {
			keyIters = 1 // the executor normalizes 0 to 1; key identically
		}
		key := timing.Key{Prog: cm.prog.Fingerprint(), Geom: v.TimingFingerprint(), Iters: keyIters}
		// Memoable only inside a private timing domain: the domain-less
		// (serialized, shared-timeline) model deliberately couples timing
		// across vNPUs to observe contention, so its results are not a
		// pure function of the key.
		res, err = s.timing.Run(key, v.HasDomain(), simulate)
	}
	if err != nil {
		return Report{}, err
	}
	return Report{
		Cycles:       int64(res.Cycles),
		Iterations:   res.Iterations,
		FPS:          res.FPSAt(s.dev.Config().FreqMHz),
		WarmupCycles: int64(v.WarmupCycles(cm.weightBytes)),
		Streaming:    cm.streaming,
	}, nil
}

// ResetTransients clears the vNPU's per-job microarchitectural
// transients (translation TLBs, RTT lookup hints, bandwidth-cap
// buckets). The serving layer calls it — together with the chip-wide
// timing reset — before every job on a resident vNPU, so a reused vNPU
// is cycle-identical to a freshly created one. It must not run while a
// job executes on the vNPU.
func (s *System) ResetTransients(v *VirtualNPU) {
	s.dev.ResetCoreTransients(v.Nodes())
}

// ModelMemoryBytes reports the global memory a model needs on a virtual
// NPU with the given core count — use it to size Request.MemoryBytes.
func (s *System) ModelMemoryBytes(m Model, cores int) (uint64, error) {
	_, info, err := s.compileAt(m, cores, 0)
	if err != nil {
		return 0, err
	}
	return info.MemBytes, nil
}

// compileAt compiles the model for the given core count with its guest
// memory region based at vaBase. The cluster's compile-once cache uses
// it directly so it can keep the program a sizing pass produces instead
// of discarding it.
func (s *System) compileAt(m Model, cores int, vaBase uint64) (*isa.Program, workload.Info, error) {
	return workload.Compile(m, workload.CompileOptions{
		Cores:           cores,
		VABase:          vaBase,
		WeightZoneBytes: s.weightZone(),
	})
}

func (s *System) weightZone() int64 {
	cfg := s.dev.Config()
	return cfg.ScratchpadBytes - cfg.MetaZoneBytes
}
