package vnpu

// The session serving path: resident vNPU leases with continuous
// batching, built on internal/session. A cluster with WithSessionReuse
// keeps the vNPU of a finished session-eligible job resident instead of
// destroying it; the next job of the same (tenant, model, topology,
// options) class leases it warm — no placement decision, no create, no
// compile — and bursts of identical jobs are co-scheduled back-to-back
// on one resident vNPU through a per-session micro-queue. Idle sessions
// expire on a TTL, are bounded LRU-wide, and are evicted on demand when
// any job (pooled or not) cannot otherwise be placed, so warm pools
// never starve jobs that need fresh rectangles.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"github.com/vnpu-sim/vnpu/internal/metrics"
	"github.com/vnpu-sim/vnpu/internal/obs"
	"github.com/vnpu-sim/vnpu/internal/place"
	"github.com/vnpu-sim/vnpu/internal/sched"
	"github.com/vnpu-sim/vnpu/internal/session"
	"github.com/vnpu-sim/vnpu/internal/topo"
)

// SessionStats is a snapshot of the session pool's counters: warm hits,
// cold creates, micro-queue batches, evictions by cause, resident-session
// gauges, and warm-vs-cold acquisition latency.
type SessionStats = metrics.SessionStats

// WithSessionReuse enables the session pool: session-eligible jobs (see
// Job.Reusable) lease resident vNPUs instead of paying the
// create→map→run→destroy path per job. SessionStats reports the warm-hit
// rate; tune the pool with WithSessionIdleTTL, WithSessionMaxIdle and
// WithSessionMicroQueue.
func WithSessionReuse() ClusterOption {
	return func(c *clusterConfig) { c.sessionReuse = true }
}

// WithSessionIdleTTL bounds how long a session may sit idle before its
// vNPU is destroyed (default session.DefaultTTL). Shorter TTLs return
// capacity sooner; longer ones raise the warm-hit rate on sparse
// traffic.
func WithSessionIdleTTL(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.sessionTTL = d }
}

// WithSessionMaxIdle bounds idle resident sessions cluster-wide (default
// session.DefaultMaxIdle); beyond it the least-recently-used idle
// session is destroyed.
func WithSessionMaxIdle(n int) ClusterOption {
	return func(c *clusterConfig) { c.sessionIdle = n }
}

// WithSessionMicroQueue bounds each busy session's micro-queue — how
// many compatible jobs may wait to be continuously batched onto the
// resident vNPU (default session.DefaultMicroQueueDepth).
func WithSessionMicroQueue(n int) ClusterOption {
	return func(c *clusterConfig) { c.sessionMicro = n }
}

// SessionStats returns a snapshot of the session pool's counters (zero
// when WithSessionReuse is off).
func (c *Cluster) SessionStats() SessionStats { return c.Snapshot().Sessions }

// CoreUsage splits one chip's cores by serving state: Allocated counts
// every core some vNPU holds, WarmIdle the subset held by idle resident
// sessions — allocated from the hypervisor's point of view but
// reclaimable on demand. The difference, Active, is what the scheduler's
// load tiebreak uses: a warm pool must not make a chip look busy.
type CoreUsage struct {
	// Cores is the chip's total core count.
	Cores int
	// Allocated counts cores held by any vNPU (running jobs, queued
	// placements, and resident sessions alike).
	Allocated int
	// WarmIdle counts cores held by idle (warm) resident sessions.
	WarmIdle int
}

// Active reports cores allocated to something other than an idle warm
// session.
func (u CoreUsage) Active() int { return u.Allocated - u.WarmIdle }

// ActiveFraction reports Active over the chip's core count.
func (u CoreUsage) ActiveFraction() float64 {
	if u.Cores == 0 {
		return 0
	}
	return float64(u.Active()) / float64(u.Cores)
}

// WarmFraction reports WarmIdle over the chip's core count.
func (u CoreUsage) WarmFraction() float64 {
	if u.Cores == 0 {
		return 0
	}
	return float64(u.WarmIdle) / float64(u.Cores)
}

// AllocatedFraction reports Allocated over the chip's core count — the
// same number Utilization reports.
func (u CoreUsage) AllocatedFraction() float64 {
	if u.Cores == 0 {
		return 0
	}
	return float64(u.Allocated) / float64(u.Cores)
}

// CoreUsage reports every chip's core usage split by serving state.
func (c *Cluster) CoreUsage() []CoreUsage {
	out := make([]CoreUsage, len(c.systems))
	for i := range c.systems {
		out[i] = c.coreUsage(i)
	}
	return out
}

func (c *Cluster) coreUsage(chip int) CoreUsage {
	sys := c.systems[chip]
	total := sys.Config().Cores()
	u := CoreUsage{Cores: total, Allocated: total - sys.FreeCores()}
	if c.pool != nil {
		u.WarmIdle = c.pool.IdleCoresOn(chip)
		if u.WarmIdle > u.Allocated {
			// An eviction's hypervisor destroy landed before the pool's
			// bookkeeping; clamp rather than report negative activity.
			u.WarmIdle = u.Allocated
		}
	}
	return u
}

// sessRes is the pooled resource: a resident vNPU plus the program
// compiled for it, cached so warm jobs skip compilation (the session key
// pins the model, so one slot suffices).
type sessRes struct {
	v  *VirtualNPU
	cm *CompiledModel
	// class is the session's scheduling class, fixed at create time (the
	// class of the job whose cold create built it). Eviction — pressure
	// reclaim and the MaxIdle bound — destroys lower classes first, and
	// the placement engine's held-core accounting files the session's
	// cores under it. A later higher-class job leasing the session does
	// not promote it; its residency was charged to its creator.
	class int
}

// sessLease names the pool lease instantiation.
type sessLease = session.Lease[*sessRes, *sessTask]

// sessTask is one job routed through the session path; it doubles as the
// micro-queue item.
type sessTask struct {
	ctx context.Context
	job Job
	req Request
	key session.Key
	h   *sched.Handle[JobReport]
	// seq is the admission sequence ticket drawn from the dispatcher's
	// counter: the job may not start until no older queued dispatcher
	// job of equal-or-higher class remains (WaitTurn).
	seq uint64
}

// sessionKeyOf computes the job's session class from the model
// fingerprint Submit already computed. ok is false when the job cannot
// be pooled: callback-based mapping options make the created vNPU a
// non-pure function of the key.
func sessionKeyOf(job Job, req Request, modelSig uint64) (session.Key, bool) {
	if !place.PureMapOptions(req.MapOptions) {
		return session.Key{}, false
	}
	return session.Key{
		Tenant: job.tenant(),
		Model:  modelSig,
		Topo:   place.CanonicalKey(job.Topology),
		Opts:   requestSignature(req),
	}, true
}

// requestSignature fingerprints every Request field that shapes the
// created vNPU; two jobs may share a resident session only when all of
// them match.
func requestSignature(req Request) uint64 {
	h := fnv.New64a()
	fold := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	confined := uint64(0)
	if req.Confined {
		confined = 1
	}
	fold(uint64(req.Strategy), confined, req.MemoryBytes, uint64(req.Translation),
		uint64(req.PageTLBEntries), uint64(req.MemChannels),
		uint64(req.BandwidthCapBytes), uint64(req.BandwidthWindow),
		uint64(req.KVBufferBytes), uint64(req.MapOptions.NodeInsDel))
	return h.Sum64()
}

// seenLimit bounds the auto-promotion memory.
const seenLimit = 4096

// autoPromote records the key and reports whether it was submitted
// before — repeated fingerprints are decode-phase-style traffic worth a
// resident session even without Job.Reusable.
func (c *Cluster) autoPromote(key session.Key) bool {
	c.seenMu.Lock()
	defer c.seenMu.Unlock()
	prev := c.seen[key]
	if prev == 0 && len(c.seen) >= seenLimit {
		// Evicting an arbitrary entry is fine for a promotion heuristic.
		for k := range c.seen {
			delete(c.seen, k)
			break
		}
	}
	if prev < 255 {
		c.seen[key] = prev + 1
	}
	return prev >= 1
}

// capacityCurable classifies placement errors that evicting idle
// sessions may cure: both "no free cores/memory" and "no region realizes
// the topology" can flip once held cores return to the free set.
func capacityCurable(err error) bool {
	return errors.Is(err, ErrNoCapacity) || errors.Is(err, ErrTopologyUnsatisfiable)
}

// sessionBusy reports whether any resident session is executing, for the
// dispatcher's park-versus-terminal-failure decision.
func (c *Cluster) sessionBusy() bool {
	return c.pool != nil && c.pool.Busy()
}

// sessionReclaim evicts one idle warm session, reporting whether
// anything was freed — the dispatcher's last resort before parking or
// failing an unplaceable job.
func (c *Cluster) sessionReclaim() bool {
	return c.pool != nil && c.pool.EvictIdle(1) > 0
}

// pokeSessions wakes one session job parked on capacity. Non-blocking;
// the one-slot buffer makes it an edge signal like the dispatcher's
// freed channel.
func (c *Cluster) pokeSessions() {
	select {
	case c.capFreed <- struct{}{}:
	default:
	}
}

// pokeAll wakes a parked job on each serving path: session exits that
// consumed capacity-wait tokens (or whose pending create kept a
// dispatcher job parked) must wake both sides.
func (c *Cluster) pokeAll() {
	c.disp.Kick()
	c.pokeSessions()
}

// submitSession admits a session-eligible job and starts its serving
// goroutine. Admission mirrors the dispatcher's: the in-flight bound is
// the queue depth (ErrQueueFull beyond), the tenant quota is one shared
// counter with the dispatcher path — the slot is reserved atomically in
// the dispatcher (ReserveSlot), so racing Submits on the two paths
// cannot jointly oversubscribe a tenant — and the job draws a sequence
// ticket from the dispatcher's admission counter, so the scheduler core
// can order it against queued one-shot work (WaitTurn in sessionRun).
func (c *Cluster) submitSession(ctx context.Context, job Job, req Request, key session.Key) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !job.Deadline.IsZero() && c.clk.Now().After(job.Deadline) {
		c.disp.ExternalDeadlineMiss(job.Priority.class())
		return nil, fmt.Errorf("vnpu: job deadline already passed at submit: %w", ErrDeadlineExceeded)
	}
	tenant := job.tenant()
	c.sessMu.Lock()
	if c.sessClosed {
		c.sessMu.Unlock()
		return nil, fmt.Errorf("vnpu: cluster closed: %w", ErrDestroyed)
	}
	if c.sessInflight >= c.queueDepth {
		c.sessMu.Unlock()
		return nil, fmt.Errorf("vnpu: %d session jobs in flight: %w", c.queueDepth, ErrQueueFull)
	}
	if err := c.disp.ReserveSlot(tenant); err != nil {
		c.sessMu.Unlock()
		return nil, err
	}
	c.sessInflight++
	c.sessSubmitted++
	c.sessWG.Add(1)
	c.sessMu.Unlock()
	class := job.Priority.class()
	c.disp.ExternalSubmitted(class)
	t := &sessTask{
		ctx: ctx, job: job, req: req, key: key,
		h:   sched.NewHandle[JobReport](c.clk, tenant, class),
		seq: c.disp.Ticket(),
	}
	c.trace(&job, obs.StageAdmitted, "", -1)
	go c.sessionRun(t)
	return &Handle{h: t.h}, nil
}

// sessionRun serves one session job: attach to a busy compatible session
// (continuous batching — its holder runs the job), or lease a session
// (warm or cold) and drain its micro-queue before releasing. A cold
// acquire that fails for lack of capacity parks until capacity moves
// anywhere in the cluster and retries — mirroring the dispatcher's
// retry-on-release backpressure — and fails terminally only when nothing
// in flight could ever free what the job needs.
//
// Before touching the pool, the job waits its admission turn: the
// scheduler core blocks it while any older queued dispatcher job of
// equal-or-higher class remains, so warm-hit traffic cannot pass queued
// one-shot work (it can still pass *lower*-class queued work — that is
// what priority classes are for).
func (c *Cluster) sessionRun(t *sessTask) {
	if err := c.disp.WaitTurn(t.ctx, t.seq, t.job.Priority.class(), t.job.Deadline); err != nil {
		c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: %w", err))
		return
	}
	var deadlineC <-chan time.Time
	if !t.job.Deadline.IsZero() {
		timer := c.clk.NewTimer(t.job.Deadline.Sub(c.clk.Now()))
		defer timer.Stop()
		deadlineC = timer.C()
	}
	var lease *sessLease
	var warm bool
	for {
		// An idle warm session of the key runs the job immediately —
		// preferable to micro-queuing behind a busy one when concurrent
		// cold creates left several sessions of the same key.
		if l, ok := c.pool.AcquireWarm(t.key); ok {
			lease, warm = l, true
			break
		}
		if c.pool.Attach(t.key, t) {
			c.trace(&t.job, obs.StageSession, "batched", -1)
			// The handoff consumed no capacity; any wakeup token this
			// goroutine ate while parked must pass to the next waiter.
			c.pokeAll()
			return
		}
		var err error
		lease, warm, err = c.pool.Acquire(t.key, func() (int, *sessRes, error) {
			return c.createSession(t.req, t.job.Priority.class())
		})
		if err == nil {
			break
		}
		if !capacityCurable(err) {
			// Exits from the parked loop that consume no capacity re-poke
			// both paths: a token eaten on a previous iteration must not
			// strand other parked session jobs, and a dispatcher job parked
			// on this goroutine's pending create needs its own wakeup.
			c.pokeAll()
			c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: acquiring session: %w", err))
			return
		}
		// Anything currently holding capacity — dispatcher placements,
		// busy or idle sessions — will poke capFreed when it lets go. With
		// nothing in flight anywhere the failure is structural; drain a
		// pending poke and retry once before declaring it terminal.
		idleSess, busySess := c.pool.Counts()
		if c.disp.InFlight() == 0 && idleSess == 0 && busySess == 0 {
			select {
			case <-c.capFreed:
				continue
			default:
			}
			c.pokeAll()
			c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: session unplaceable on an idle cluster: %w", err))
			return
		}
		select {
		case <-c.capFreed:
		case <-deadlineC:
			c.pokeAll()
			c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: deadline passed awaiting session capacity: %w", ErrDeadlineExceeded))
			return
		case <-t.ctx.Done():
			c.pokeAll()
			c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: job canceled awaiting session capacity: %w", t.ctx.Err()))
			return
		}
	}
	if c.rec != nil || c.slo != nil {
		detail := "cold"
		if warm {
			detail = "warm"
		}
		c.trace(&t.job, obs.StageSession, detail, lease.Chip())
	}
	r := lease.Resource()
	// Lease the vNPU only after Acquire: the session is busy (hence
	// unevictable) from here until Next releases it, so the guard lease
	// can safely bracket just the executions. Leasing inside the create
	// factory would hand the pool a vNPU it cannot destroy when Acquire
	// loses the close race.
	r.v.Lease()
	for {
		fatal := c.execSession(lease.Chip(), r, t, warm)
		// The run loop holds the vNPU's lease only while a job executes;
		// it must drop before the session can go idle, or eviction of the
		// just-idled session would trip the lease-safe destroy guard.
		r.v.Unlease()
		if fatal {
			// The resource is suspect (non-cancellation execution error):
			// destroy it and re-dispatch whatever was micro-queued — each
			// job attaches elsewhere or acquires a fresh session.
			for _, queued := range lease.Discard() {
				go c.sessionRun(queued)
			}
			return
		}
		next, ok := lease.Next()
		if !ok {
			return
		}
		r.v.Lease()
		t, warm = next, true
	}
}

// execSession executes one job on the resident vNPU, resolving the
// session's program through the cluster's compile-once cache on first
// use and reusing it for every later job. It reports whether the session
// must be discarded (true on execution errors that are not the job's own
// cancellation). Jobs whose scheduling deadline passed while they waited
// — in the micro-queue or for the chip — fail fast without running.
func (c *Cluster) execSession(chip int, r *sessRes, t *sessTask, warm bool) (fatal bool) {
	if err := t.ctx.Err(); err != nil {
		c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: job canceled before execution: %w", err))
		return false
	}
	if !t.job.Deadline.IsZero() && c.clk.Now().After(t.job.Deadline) {
		c.finishSess(t, JobReport{}, fmt.Errorf("vnpu: deadline passed before execution: %w", ErrDeadlineExceeded))
		return false
	}
	t.h.MarkStarted(chip)
	c.trace(&t.job, obs.StageExecuting, "", chip)
	sys := c.systems[chip]
	claim := c.acquireRegion(chip, r.v)
	// The busy clock starts after the claim: waiting for a conflicting
	// region is queue time, not execution time, or per-chip busy% would
	// exceed 100%.
	start := c.clk.Now()
	if c.testExecHook != nil {
		c.testExecHook(chip)
	}
	r.v.ResetForRun()
	var rep Report
	var err error
	if r.cm == nil {
		r.cm, err = c.compileFor(chip, r.v, t.job.Model, t.job.modelSig)
	}
	if err == nil {
		rep, err = sys.RunCompiled(t.ctx, r.v, r.cm, t.job.Iterations)
	}
	// Measure before releasing the claim: post-release descheduling
	// would otherwise bleed into the next job's execution time.
	busy := c.clk.Since(start)
	c.releaseRegion(chip, claim, r.v.NumCores(), busy)
	c.sessMu.Lock()
	c.sessChipJobs[chip]++
	c.sessMu.Unlock()
	c.sessExec[t.job.Priority.class()].Observe(busy)
	if err != nil {
		c.finishSess(t, JobReport{}, err)
		return t.ctx.Err() == nil
	}
	c.finishSess(t, JobReport{
		Report:   rep,
		Chip:     chip,
		Tenant:   t.job.tenant(),
		Model:    t.job.Model.Name,
		MapCost:  r.v.MapCost(),
		Priority: t.job.Priority,
		Warm:     warm,
	}, nil)
	return false
}

// finishSess resolves a session job's handle, books it into the
// scheduler core's per-class accounting (so SchedStats covers both
// serving paths), and returns its admission and quota slots.
func (c *Cluster) finishSess(t *sessTask, rep JobReport, err error) {
	c.sessMu.Lock()
	c.sessInflight--
	if err == nil {
		c.sessCompleted++
	} else {
		c.sessFailed++
	}
	c.sessMu.Unlock()
	class := t.job.Priority.class()
	c.sessE2E[class].Observe(t.h.Sojourn())
	if c.rec != nil || c.slo != nil {
		stage := obs.StageDone
		if err != nil {
			stage = obs.StageFailed
		}
		c.trace(&t.job, stage, "", t.h.Chip())
	}
	c.disp.ReleaseSlot(t.h.Tenant())
	t.h.Finish(rep, err)
	c.disp.ExternalDone(class, t.h.QueueWait(), err)
	c.sessWG.Done()
}

// createSession is the pool's cold path: place and create a resident
// vNPU for the session class, filed under the creating job's scheduling
// class. Candidates keep the engine's cost-then-price order; among
// equals, the chip already holding the most session cores of
// equal-or-lower class wins — consolidating onto residency this class is
// allowed to cannibalize under pressure, while higher-class warm pools
// and genuinely free chips stay intact for topologies that need fresh
// rectangles.
func (c *Cluster) createSession(req Request, class int) (int, *sessRes, error) {
	preq := placeRequest(req)
	cands, err := c.engine.Place(preq)
	if err != nil {
		return 0, nil, err
	}
	// Snapshot held counts once (HeldBelow takes the engine lock), then
	// re-rank with the consolidation tiebreak as a proper lexicographic
	// order: cost, price, then most reclaimable session-held cores first.
	held := make(map[int]int, len(cands))
	for _, cand := range cands {
		held[cand.Chip] = c.engine.HeldBelow(cand.Chip, class)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].Cost != cands[b].Cost {
			return cands[a].Cost < cands[b].Cost
		}
		if cands[a].Price != cands[b].Price {
			return cands[a].Price < cands[b].Price
		}
		return held[cands[a].Chip] > held[cands[b].Chip]
	})
	var lastErr error
	for _, cand := range cands {
		mapRes, err := c.engine.Resolve(cand.Chip, preq)
		if err != nil {
			lastErr = err
			continue
		}
		v, err := c.systems[cand.Chip].hv.CreateVNPUPlaced(req, mapRes)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.engine.Reserve(cand.Chip, v.Nodes(), class); err != nil {
			// The engine's mirror disagrees with the hypervisor — undo
			// the create rather than serve from a corrupted view.
			_ = c.systems[cand.Chip].Destroy(v)
			return 0, nil, err
		}
		// The resident vNPU executes inside its own timing domain for
		// its whole lifetime, so warm jobs overlap disjoint neighbors.
		// An overlap failure means the placement view is corrupt — undo
		// the create rather than serve on shared timing.
		if err := v.OpenDomain(); err != nil {
			_ = c.destroySession(cand.Chip, &sessRes{v: v, class: class})
			return 0, nil, err
		}
		return cand.Chip, &sessRes{v: v, class: class}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("vnpu: no chip can host the session: %w", ErrNoCapacity)
	}
	return 0, nil, lastErr
}

// destroySession is the pool's destroy hook: tear the resident vNPU down
// and return its cores to the placement engine's mirror (and its class's
// held-core account).
func (c *Cluster) destroySession(chip int, r *sessRes) error {
	nodes := append([]topo.NodeID(nil), r.v.Nodes()...)
	if err := c.systems[chip].Destroy(r.v); err != nil {
		return err
	}
	return c.engine.Evict(chip, nodes, r.class)
}
