package vnpu

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFleetSessionAffinity: a reusable job's submissions all land on the
// shard that owns its key, and repeats run warm there.
func TestFleetSessionAffinity(t *testing.T) {
	f, err := NewFleet(FPGAConfig(), 3, 1, WithSessionReuse())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	job := Job{Tenant: "llm", Model: mustModel(t, "mobilenet"), Topology: Chain(2), Reusable: true}
	owner := -1
	warm := 0
	for i := 0; i < 8; i++ {
		h, err := f.Submit(context.Background(), job)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if owner < 0 {
			owner = h.Shard()
		} else if h.Shard() != owner {
			t.Fatalf("submit %d landed on shard %d, want owner %d", i, h.Shard(), owner)
		}
		rep, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.Warm {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("no warm hits across 8 affine submissions")
	}
	s := f.Stats()
	total := uint64(0)
	for _, cs := range s.Shards {
		total += cs.Completed
	}
	if total != 8 {
		t.Fatalf("fleet completed %d jobs, want 8", total)
	}
}

// TestFleetDrainRejoinTyped: draining re-homes the shard's keys, double
// drain and full drain fail typed, and rejoin brings the shard (and its
// keys) back.
func TestFleetDrainRejoinTyped(t *testing.T) {
	f, err := NewFleet(FPGAConfig(), 2, 1, WithSessionReuse())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	job := Job{Tenant: "a", Model: mustModel(t, "mobilenet"), Topology: Chain(2), Reusable: true}
	h, err := f.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	owner := h.Shard()
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	if err := f.Drain(ctx, owner); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := f.Drain(ctx, owner); !errors.Is(err, ErrShardDraining) {
		t.Fatalf("double drain: got %v, want ErrShardDraining", err)
	}
	// The drained shard holds nothing and its warm pool is flushed.
	for i, u := range f.Shard(owner).Utilization() {
		if u != 0 {
			t.Fatalf("drained shard chip %d still %.0f%% utilized", i, u*100)
		}
	}
	// The key re-homed: submissions keep working on the other shard.
	h2, err := f.Submit(ctx, job)
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if h2.Shard() == owner {
		t.Fatalf("re-homed job landed on the drained shard %d", owner)
	}
	if _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	other := h2.Shard()
	if err := f.Drain(ctx, other); err != nil {
		t.Fatalf("drain last shard: %v", err)
	}
	if _, err := f.Submit(ctx, job); !errors.Is(err, ErrNoActiveShards) {
		t.Fatalf("submit with all shards drained: got %v, want ErrNoActiveShards", err)
	}

	if err := f.Rejoin(owner); err != nil {
		t.Fatal(err)
	}
	if err := f.Rejoin(owner); err == nil {
		t.Fatal("double rejoin succeeded")
	}
	h3, err := f.Submit(ctx, job)
	if err != nil {
		t.Fatalf("submit after rejoin: %v", err)
	}
	if h3.Shard() != owner {
		t.Fatalf("after rejoin job landed on %d, want the rejoined owner %d", h3.Shard(), owner)
	}
	if _, err := h3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Drains != 2 || s.Rejoins != 1 {
		t.Fatalf("Drains/Rejoins = %d/%d, want 2/1", s.Drains, s.Rejoins)
	}
}

// TestFleetChurn: concurrent mixed-tenant submissions while shards drain
// and rejoin under them. The invariant is zero lost jobs — every
// accepted handle resolves (success or typed failure), and every refused
// submission failed with a typed admission error.
func TestFleetChurn(t *testing.T) {
	f, err := NewFleet(FPGAConfig(), 3, 1, WithSessionReuse(), WithQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	model := mustModel(t, "mobilenet")

	const workers, perWorker = 4, 60
	var mu sync.Mutex
	var handles []*FleetHandle
	var refused []error
	var wg sync.WaitGroup
	tenants := []string{"llm", "vision", "batch", "mobile"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				job := Job{
					Tenant:   tenants[w],
					Model:    model,
					Topology: Chain(2),
					Reusable: i%2 == 0,
				}
				if i%5 == 0 {
					job.Priority = PriorityBestEffort
				}
				h, err := f.Submit(context.Background(), job)
				mu.Lock()
				if err != nil {
					refused = append(refused, err)
				} else {
					handles = append(handles, h)
				}
				mu.Unlock()
			}
		}(w)
	}

	// Churn membership under the load: drain and rejoin each shard twice.
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for s := 0; s < f.NumShards(); s++ {
			if err := f.Drain(ctx, s); err != nil {
				t.Errorf("drain %d round %d: %v", s, round, err)
				continue
			}
			if err := f.Rejoin(s); err != nil {
				t.Errorf("rejoin %d round %d: %v", s, round, err)
			}
		}
	}
	wg.Wait()

	waitCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	resolved, failed := 0, 0
	for i, h := range handles {
		_, err := h.Wait(waitCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("handle %d never resolved: a job was lost", i)
		}
		resolved++
		if err != nil {
			failed++
			// Any failure must be typed, not a drop.
			if !errors.Is(err, ErrNoActiveShards) && !errors.Is(err, ErrShardDraining) &&
				!errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrNoCapacity) &&
				!errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrQuotaExceeded) {
				t.Errorf("handle %d failed untyped: %v", i, err)
			}
		}
	}
	for _, err := range refused {
		if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrNoActiveShards) &&
			!errors.Is(err, ErrQuotaExceeded) {
			t.Errorf("refused submission with untyped error: %v", err)
		}
	}
	if resolved != len(handles) {
		t.Fatalf("resolved %d of %d handles", resolved, len(handles))
	}
	t.Logf("churn: %d accepted (%d failed typed), %d refused typed, stats %+v",
		len(handles), failed, len(refused), f.Stats())
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(context.Background(), Job{Tenant: "x", Model: model, Topology: Chain(2)}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("submit after close: got %v, want ErrDestroyed", err)
	}
}
