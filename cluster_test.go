package vnpu

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustModel(t testing.TB, name string) Model {
	t.Helper()
	m, err := ModelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClusterServesMixedJobs drives a small cluster end to end: jobs from
// several tenants land on chips, report progress, and release capacity.
func TestClusterServesMixedJobs(t *testing.T) {
	cluster, err := NewCluster(SimConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	jobs := []Job{
		{Tenant: "vision", Model: mustModel(t, "resnet18"), Topology: Mesh(3, 4)},
		{Tenant: "vision", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 3)},
		{Tenant: "llm", Model: mustModel(t, "gpt2-small"), Topology: Mesh(3, 4),
			Options: []Option{WithConfinement(true)}},
		{Tenant: "mobile", Model: mustModel(t, "mobilenet"), Topology: Chain(4), Iterations: 2},
	}
	handles := make([]*Handle, len(jobs))
	for i, job := range jobs {
		h, err := cluster.Submit(context.Background(), job)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		rep, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.FPS <= 0 {
			t.Fatalf("job %d: no throughput in %+v", i, rep)
		}
		if rep.Chip < 0 || rep.Chip >= cluster.Chips() {
			t.Fatalf("job %d: bad chip %d", i, rep.Chip)
		}
		if rep.Tenant != jobs[i].tenant() {
			t.Fatalf("job %d: tenant %q, want %q", i, rep.Tenant, jobs[i].tenant())
		}
	}
	s := cluster.Stats()
	if s.Completed != uint64(len(jobs)) || s.Failed != 0 {
		t.Fatalf("stats %+v, want %d completed", s, len(jobs))
	}
	// All capacity returned.
	for i, u := range cluster.Utilization() {
		if u != 0 {
			t.Fatalf("chip %d still %.0f%% utilized after drain", i, u*100)
		}
	}
}

// holdCluster builds a 1-chip FPGA cluster whose executions block until
// the returned release func is called — a deterministic way to keep
// capacity occupied.
func holdCluster(t *testing.T, opts ...ClusterOption) (*Cluster, func()) {
	t.Helper()
	cluster, err := NewCluster(FPGAConfig(), 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	cluster.testExecHook = func(int) { <-gate }
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		cluster.Close()
	})
	return cluster, release
}

// fullChipJob occupies all 8 cores of an FPGA chip, so a second copy can
// never be placed concurrently.
func fullChipJob(t *testing.T, tenant string) Job {
	return Job{Tenant: tenant, Model: mustModel(t, "alexnet"), Topology: Mesh(2, 4)}
}

func TestClusterQueueFullRejection(t *testing.T) {
	cluster, release := holdCluster(t, WithQueueDepth(1))
	defer release()

	h1, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Started()
	// The chip is fully occupied: the next job parks in the dispatcher,
	// one more fits the queue, anything beyond must be rejected.
	var admitted []*Handle
	var rejected int
	for i := 0; i < 3; i++ {
		h, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
		switch {
		case err == nil:
			admitted = append(admitted, h)
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Fatal("no submission was rejected with ErrQueueFull")
	}
	if s := cluster.Stats(); s.RejectedQueueFull == 0 {
		t.Fatal("stats did not count queue-full rejections")
	}
	release()
	for i, h := range admitted {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatalf("admitted job %d: %v", i, err)
		}
	}
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClusterCancelQueuedJob(t *testing.T) {
	cluster, release := holdCluster(t)
	defer release()

	h1, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	<-h1.Started()
	ctx, cancel := context.WithCancel(context.Background())
	h2, err := cluster.Submit(ctx, fullChipJob(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := h2.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued job: got %v, want context.Canceled", err)
	}
	release()
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClusterTenantQuota(t *testing.T) {
	cluster, release := holdCluster(t, WithTenantQuota(1))
	defer release()

	h1, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Submit(context.Background(), fullChipJob(t, "a")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("tenant a over quota: got %v, want ErrQuotaExceeded", err)
	}
	// A different tenant is unaffected by a's quota.
	hb, err := cluster.Submit(context.Background(), fullChipJob(t, "b"))
	if err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	release()
	if _, err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The quota slot frees once the job completes.
	h3, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
	if err != nil {
		t.Fatalf("tenant a after drain: %v", err)
	}
	if _, err := h3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := cluster.Stats(); s.RejectedQuota == 0 {
		t.Fatal("stats did not count the quota rejection")
	}
}

// TestClusterUnsatisfiableJob: a topology larger than a whole chip can
// never be placed and is rejected at Submit, before it can head-of-line
// block the dispatcher.
func TestClusterUnsatisfiableJob(t *testing.T) {
	cluster, err := NewCluster(FPGAConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	_, err = cluster.Submit(context.Background(), Job{
		Model:    mustModel(t, "alexnet"),
		Topology: Mesh(3, 4), // 12 cores, chips have 8
	})
	if !errors.Is(err, ErrTopologyUnsatisfiable) {
		t.Fatalf("got %v, want ErrTopologyUnsatisfiable at Submit", err)
	}
}

// TestClusterMemoryBeyondChipRejectedAtSubmit: memory larger than a whole
// chip's HBM pool can never be allocated and is rejected at Submit.
func TestClusterMemoryBeyondChipRejectedAtSubmit(t *testing.T) {
	cluster, err := NewCluster(FPGAConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	hbm := uint64(FPGAConfig().HBMCapacityBytes)
	_, err = cluster.Submit(context.Background(), Job{
		Model:    mustModel(t, "alexnet"),
		Topology: Mesh(2, 2),
		Options:  []Option{WithMemory(2 * hbm)},
	})
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("got %v, want ErrMemoryExceeded at Submit", err)
	}
}

// TestClusterTerminalDispatchFailure exercises the terminal dispatch
// path: a job that passes admission but cannot be placed on any chip of
// an idle cluster (an exact-topology request no chip can realize) fails
// with ErrTopologyUnsatisfiable instead of waiting forever.
func TestClusterTerminalDispatchFailure(t *testing.T) {
	cluster, err := NewCluster(FPGAConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// An 8-node chain on a fully-free 2x4 mesh maps onto the whole chip,
	// whose induced topology has extra edges — StrategyExact rejects it.
	h, err := cluster.Submit(context.Background(), Job{
		Model:    mustModel(t, "alexnet"),
		Topology: Chain(8),
		Options:  []Option{WithStrategy(StrategyExact)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); !errors.Is(err, ErrTopologyUnsatisfiable) {
		t.Fatalf("got %v, want ErrTopologyUnsatisfiable", err)
	}
}

func TestClusterSubmitAfterClose(t *testing.T) {
	cluster, err := NewCluster(FPGAConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Submit(context.Background(), fullChipJob(t, "a")); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("submit after close: got %v, want ErrDestroyed", err)
	}
}

// TestTypedErrorsOnSystem covers the sentinels on the single-chip path:
// every public error value must be errors.Is-matchable.
func TestTypedErrorsOnSystem(t *testing.T) {
	sys, err := NewSystem(SimConfig())
	if err != nil {
		t.Fatal(err)
	}

	// ErrNoCapacity: more cores than the chip has.
	if _, err := sys.Create(Request{Topology: Mesh(7, 7)}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("oversized create: got %v, want ErrNoCapacity", err)
	}

	// ErrTopologyUnsatisfiable: a 36-node chain has no exact region on the
	// fully-free 6x6 mesh (the induced region is the whole mesh).
	if _, err := sys.Create(NewRequest(Chain(36), WithStrategy(StrategyExact))); !errors.Is(err, ErrTopologyUnsatisfiable) {
		t.Fatalf("exact chain: got %v, want ErrTopologyUnsatisfiable", err)
	}

	// ErrMemoryExceeded: a vNPU with no memory cannot hold a model.
	v, err := sys.Create(Request{Topology: Mesh(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModel(v, mustModel(t, "alexnet"), 1); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("run without memory: got %v, want ErrMemoryExceeded", err)
	}

	// ErrDestroyed: double destroy.
	if err := sys.Destroy(v); err != nil {
		t.Fatal(err)
	}
	if err := sys.Destroy(v); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("double destroy: got %v, want ErrDestroyed", err)
	}
}

// TestClusterConcurrentSubmitters hammers a cluster from many goroutines
// (run with -race) to exercise dispatcher/worker/hypervisor concurrency.
func TestClusterConcurrentSubmitters(t *testing.T) {
	cluster, err := NewCluster(SimConfig(), 2, WithQueueDepth(256))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	model := mustModel(t, "alexnet")
	topos := []*Topology{Mesh(2, 2), Mesh(2, 3), Chain(3)}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				h, err := cluster.Submit(context.Background(), Job{
					Tenant:   []string{"a", "b", "c"}[g%3],
					Model:    model,
					Topology: topos[(g+i)%len(topos)],
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := h.Wait(context.Background()); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := cluster.Stats(); s.Completed != 32 {
		t.Fatalf("completed %d of 32", s.Completed)
	}
}

// TestClusterHeterogeneousPlacement boots a mixed DCRA/FPGA cluster and
// checks the cost-model routing: a small job both chips host exactly goes
// to the cheaper FPGA-scale chip, while a topology only the big chip can
// hold lands there.
func TestClusterHeterogeneousPlacement(t *testing.T) {
	cluster, err := NewCluster(Config{}, 0, WithChipProfiles(
		ChipSpec{Config: SimConfig()},
		ChipSpec{Config: FPGAConfig()},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Chips() != 2 {
		t.Fatalf("cluster has %d chips, want the 2 specs", cluster.Chips())
	}

	small, err := cluster.Submit(context.Background(), Job{
		Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := small.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chip != 1 {
		t.Fatalf("small job on chip %d, want cheap FPGA chip 1", rep.Chip)
	}
	if rep.MapCost != 0 {
		t.Fatalf("small job map cost %v on an idle chip, want 0", rep.MapCost)
	}

	big, err := cluster.Submit(context.Background(), Job{
		Tenant: "a", Model: mustModel(t, "resnet18"), Topology: Mesh(3, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep, err = big.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rep.Chip != 0 {
		t.Fatalf("12-core job on chip %d, want the only big chip 0", rep.Chip)
	}
}

// TestClusterProfileMemoryOverride: an operator-set ChipSpec profile
// memory bound is honored by the placement filter — jobs whose footprint
// exceeds it avoid that chip even though its hardware pool is larger.
func TestClusterProfileMemoryOverride(t *testing.T) {
	cluster, err := NewCluster(Config{}, 0, WithChipProfiles(
		ChipSpec{Config: SimConfig(), Profile: ChipProfile{MemoryBytes: 64 << 10}},
		ChipSpec{Config: SimConfig()},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// alexnet's footprint is far beyond 64 KiB, so only chip 1 qualifies.
	for i := 0; i < 2; i++ {
		h, err := cluster.Submit(context.Background(), Job{
			Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Chip != 1 {
			t.Fatalf("job %d on chip %d, want chip 1 (chip 0's profile caps memory)", i, rep.Chip)
		}
	}

	// When EVERY profile's bound is below the footprint, the job must be
	// rejected at Submit — admitting it would head-of-line-block the FIFO
	// dispatcher on a placement no chip will ever accept.
	capped, err := NewCluster(Config{}, 0, WithChipProfiles(
		ChipSpec{Config: SimConfig(), Profile: ChipProfile{MemoryBytes: 64 << 10}},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Close()
	_, err = capped.Submit(context.Background(), Job{
		Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2),
	})
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("got %v, want ErrMemoryExceeded at Submit (profile bound)", err)
	}

	// Joint satisfiability: one chip has the cores (but capped memory),
	// another has the memory (but too few cores). Independently both
	// maxima pass; no single chip fits, so Submit must reject rather than
	// park the dispatcher forever.
	split, err := NewCluster(Config{}, 0, WithChipProfiles(
		ChipSpec{Config: SimConfig(), Profile: ChipProfile{MemoryBytes: 64 << 10}},
		ChipSpec{Config: FPGAConfig()},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer split.Close()
	_, err = split.Submit(context.Background(), Job{
		Tenant: "a", Model: mustModel(t, "resnet18"), Topology: Mesh(3, 4),
	})
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("got %v, want ErrMemoryExceeded for a jointly unsatisfiable job", err)
	}
}

// TestClusterPlacementCacheServesRepeatTraffic: repeated identical jobs
// are placed from the mapping cache, and the counters surface it.
func TestClusterPlacementCacheServesRepeatTraffic(t *testing.T) {
	cluster, err := NewCluster(SimConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	model := mustModel(t, "alexnet")
	for i := 0; i < 4; i++ {
		h, err := cluster.Submit(context.Background(), Job{
			Tenant: "a", Model: model, Topology: Mesh(2, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Serialize so every dispatch sees fully-free chips — the same
		// free-set signature every time.
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ps := cluster.PlacementStats()
	if ps.Placements < 4 {
		t.Fatalf("placements = %d, want >= 4", ps.Placements)
	}
	if ps.CacheHits == 0 {
		t.Fatalf("no cache hits across identical dispatches: %+v", ps)
	}
	if ps.HitRate() <= 0.5 {
		t.Fatalf("hit rate %.2f, want > 0.5 for repeat traffic: %+v", ps.HitRate(), ps)
	}
	// Cold clusters are available for comparison.
	cold, err := NewCluster(SimConfig(), 1, WithPlacementCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	h, err := cold.Submit(context.Background(), Job{Tenant: "a", Model: model, Topology: Mesh(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ps := cold.PlacementStats(); ps.CacheHits != 0 {
		t.Fatalf("cold cluster hit its cache: %+v", ps)
	}
}

// TestClusterCompilesModelOnce: admission compiles a given (model, core
// count) workload once and keeps the sized program; subsequent
// submissions — including the executions themselves — reuse the cached
// program (rebased to their vNPU's memory base) instead of recompiling.
func TestClusterCompilesModelOnce(t *testing.T) {
	cluster, err := NewCluster(SimConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	model := mustModel(t, "resnet18")
	var handles []*Handle
	for i := 0; i < 3; i++ {
		h, err := cluster.Submit(context.Background(), Job{
			Tenant: "a", Model: model, Topology: Mesh(2, 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	cluster.progMu.Lock()
	entries := len(cluster.progs)
	cluster.progMu.Unlock()
	if entries != 1 {
		t.Fatalf("program cache holds %d entries after 3 identical submissions, want 1", entries)
	}
	// A different core count is a different program.
	h, err := cluster.Submit(context.Background(), Job{
		Tenant: "a", Model: model, Topology: Mesh(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	handles = append(handles, h)
	var reps []JobReport
	for i, h := range handles {
		rep, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		reps = append(reps, rep)
	}
	cluster.progMu.Lock()
	entries = len(cluster.progs)
	cluster.progMu.Unlock()
	if entries != 2 {
		t.Fatalf("program cache holds %d entries after a second shape, want 2", entries)
	}
	// Execution did not add entries beyond sizing: the runs were served
	// from the admission-compiled programs, and the cached program is
	// cycle-identical run to run.
	if reps[0].Cycles != reps[1].Cycles || reps[1].Cycles != reps[2].Cycles {
		t.Fatalf("cached program changed cycles: %d / %d / %d",
			reps[0].Cycles, reps[1].Cycles, reps[2].Cycles)
	}
}

// TestHandleWaitTimeout checks that an expired wait context abandons the
// wait without killing the job.
func TestHandleWaitTimeout(t *testing.T) {
	cluster, release := holdCluster(t)

	h, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := h.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	release()
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatalf("job should have survived the abandoned wait: %v", err)
	}
}

// TestClusterPriorityResolution: PriorityDefault resolves to the cluster
// default, WithDefaultPriority overrides it, WithTenantPriorityCap
// clamps a tenant's class, and the resolved class is echoed in the
// JobReport.
func TestClusterPriorityResolution(t *testing.T) {
	cluster, err := NewCluster(FPGAConfig(), 1,
		WithTenantPriorityCap("batch", PriorityBestEffort))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	submitPrio := func(tenant string, p Priority) Priority {
		t.Helper()
		h, err := cluster.Submit(context.Background(), Job{
			Tenant: tenant, Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Priority: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Priority
	}
	if got := submitPrio("a", PriorityDefault); got != PriorityNormal {
		t.Fatalf("default resolved to %v, want PriorityNormal", got)
	}
	if got := submitPrio("a", PriorityCritical); got != PriorityCritical {
		t.Fatalf("explicit priority resolved to %v, want PriorityCritical", got)
	}
	if got := submitPrio("batch", PriorityCritical); got != PriorityBestEffort {
		t.Fatalf("capped tenant resolved to %v, want PriorityBestEffort", got)
	}

	hi, err := NewCluster(FPGAConfig(), 1, WithDefaultPriority(PriorityHigh))
	if err != nil {
		t.Fatal(err)
	}
	defer hi.Close()
	h, err := hi.Submit(context.Background(), Job{
		Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Priority != PriorityHigh {
		t.Fatalf("cluster default resolved to %v, want PriorityHigh", rep.Priority)
	}
	// Per-class accounting surfaced it.
	ss := hi.SchedStats()
	if cs := ss.Classes[PriorityHigh.class()]; cs.Completed != 1 {
		t.Fatalf("per-class stats: %+v", ss.Classes)
	}
}

// TestClusterDeadlineExceededTyped: a job whose Deadline passes before
// placement fails errors.Is-matchably on both serving paths, and a
// deadline already in the past is rejected at Submit.
func TestClusterDeadlineExceededTyped(t *testing.T) {
	cluster, release := holdCluster(t)
	defer release()

	past := Job{Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2),
		Deadline: time.Now().Add(-time.Second)}
	if _, err := cluster.Submit(context.Background(), past); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("past deadline at submit: got %v, want ErrDeadlineExceeded", err)
	}

	// Occupy the chip, then queue a job with a tight deadline: it must
	// fail fast with the typed error while the blocker keeps running.
	blocker, err := cluster.Submit(context.Background(), fullChipJob(t, "a"))
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.Started()
	h, err := cluster.Submit(context.Background(), Job{
		Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2),
		Deadline: time.Now().Add(25 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued past deadline: got %v, want ErrDeadlineExceeded", err)
	}
	if got := cluster.SchedStats().DeadlineMisses(); got < 2 {
		t.Fatalf("deadline misses = %d, want >= 2", got)
	}
	release()
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}
