package vnpu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/vnpu-sim/vnpu/internal/fleet"
	"github.com/vnpu-sim/vnpu/internal/obs"
	"github.com/vnpu-sim/vnpu/internal/obs/slo"
	"github.com/vnpu-sim/vnpu/internal/place"
	"github.com/vnpu-sim/vnpu/internal/sched"
	"github.com/vnpu-sim/vnpu/internal/sim"
)

// Fleet is the front-end over N independent Cluster shards — the scale
// tier above one cluster's chips. Jobs route by session affinity:
// a job with a session fingerprint (tenant, model, topology, options)
// that is reusable — explicitly or by repetition — consistent-hashes to
// its owning shard, so the warm resident vNPU it would hit is always on
// the shard it lands on; one-shot traffic instead balances onto the
// least-pressured shard. A background stealer re-homes queued
// best-effort work from overloaded shards, and shards drain and rejoin
// online: draining stops admissions, re-homes the shard's queued work
// and session keys, finishes its running jobs, and flushes its warm
// pool, with typed errors (ErrShardDraining, ErrNoActiveShards) — never
// dropped jobs — on every path.
//
// All methods are safe for concurrent use.
type Fleet struct {
	shards []*Cluster
	router *fleet.Router
	clk    sim.Clock
	// reg aggregates the fleet's own counters plus every shard's
	// registry; rec is the shared trace recorder (nil unless
	// WithTracing), one ring per shard; slo is the shared error-budget
	// tracker (nil unless WithSLO), scored by every shard so budgets
	// follow jobs across forwards. See telemetry.go.
	reg *obs.Registry
	rec *obs.Recorder
	slo *slo.Tracker

	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seen     map[string]uint8
	steals   uint64
	rehomed  uint64
	rerouted uint64
	drains   uint64
	rejoins  uint64
}

const (
	// stealInterval paces the background stealer; stealBatch bounds one
	// pass's movement; stealGap is the minimum pressure difference worth
	// paying a cross-shard move for (Pressure runs on a roughly 0..2
	// scale: queued fraction plus held-core fraction).
	stealInterval = 2 * time.Millisecond
	stealBatch    = 8
	stealGap      = 0.5
	// drainPoll paces the quiescence check of Drain.
	drainPoll = time.Millisecond
)

// NewFleet boots a fleet of identical shards, each a Cluster of
// chipsPerShard chips built from cfg and the given options (so
// WithSessionReuse, WithClock etc. apply to every shard alike). Close
// the fleet to stop its shards.
func NewFleet(cfg Config, shards, chipsPerShard int, opts ...ClusterOption) (*Fleet, error) {
	if shards < 1 {
		return nil, fmt.Errorf("vnpu: fleet needs at least one shard, got %d", shards)
	}
	// The fleet's own timers (stealer pacing, drain polling) follow the
	// same clock the shards were given.
	var scratch clusterConfig
	for _, opt := range opts {
		opt(&scratch)
	}
	clk := scratch.clock
	if clk == nil {
		clk = sim.Wall()
	}
	f := &Fleet{
		router: fleet.NewRouter(shards, 0),
		clk:    clk,
		stop:   make(chan struct{}),
		seen:   make(map[string]uint8),
		reg:    obs.NewRegistry(),
	}
	f.reg.AddCollector(f.collect)
	// One recorder shared by every shard: per-shard rings keep writers
	// contention-free, while the shared sequence and job-id counters keep
	// a forwarded job's events on one trace track.
	if scratch.tracing {
		f.rec = obs.NewRecorder(shards, scratch.traceBuf)
	}
	// Likewise one SLO tracker: a fleet-wide budget must score a job once
	// wherever it completes, and the fleet registers its collector exactly
	// once (the shards skip theirs when handed a shared tracker).
	if len(scratch.slos) > 0 {
		objs := make([]slo.Objective, len(scratch.slos))
		for i, s := range scratch.slos {
			objs[i] = s.objective()
		}
		f.slo = slo.NewTracker(clk.Now, priorityClassNames(), objs...)
		f.reg.AddCollector(f.slo.Collect)
	}
	for i := 0; i < shards; i++ {
		shardOpts := append(opts[:len(opts):len(opts)], withShardObs(f.rec, i))
		if f.slo != nil {
			shardOpts = append(shardOpts, withSharedSLO(f.slo))
		}
		c, err := NewCluster(cfg, chipsPerShard, shardOpts...)
		if err != nil {
			for _, built := range f.shards {
				_ = built.Close()
			}
			return nil, fmt.Errorf("vnpu: booting shard %d: %w", i, err)
		}
		f.shards = append(f.shards, c)
		f.reg.AddSource(c.reg)
	}
	f.wg.Add(1)
	go f.stealLoop()
	return f, nil
}

// FleetHandle tracks one job submitted to a fleet: the ordinary Handle
// plus which shard took it. A stolen or re-homed job's handle keeps
// resolving — the fleet mirrors the outcome back — but Shard reports the
// shard that admitted it.
type FleetHandle struct {
	*Handle
	shard int
}

// Shard reports the shard the job was admitted on.
func (h *FleetHandle) Shard() int { return h.shard }

// routeKey fingerprints the job for shard routing: tenant, model
// content, exact topology and the vNPU-shaping options — the same
// identity the shards' session pools key warm leases by, so hashing it
// sends every job that could share a resident session to the same
// shard. ok is false for jobs that cannot be pooled (callback map
// options); they balance by pressure instead.
func routeKey(job Job) (string, bool) {
	req := job.request()
	if !place.PureMapOptions(req.MapOptions) {
		return "", false
	}
	return fmt.Sprintf("%s\x00%x\x00%x\x00%s",
		job.tenant(), modelSignature(job.Model), requestSignature(req),
		place.CanonicalKey(job.Topology)), true
}

// promote records the route key and reports whether it was seen before —
// the fleet-level mirror of the clusters' auto-promotion: a repeating
// fingerprint is session traffic worth pinning to its hash-owned shard
// even without Job.Reusable.
func (f *Fleet) promote(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	prev := f.seen[key]
	if prev == 0 && len(f.seen) >= seenLimit {
		for k := range f.seen {
			delete(f.seen, k)
			break
		}
	}
	if prev < 255 {
		f.seen[key] = prev + 1
	}
	return prev >= 1
}

// pressure is the router's load signal for one shard.
func (f *Fleet) pressure(shard int) float64 { return f.shards[shard].Pressure() }

// Submit routes the job to a shard and submits it there. Session-affine
// jobs (Job.Reusable, or a fingerprint the fleet has seen repeat) go to
// the shard owning their key — warm traffic keeps hitting its resident
// sessions; everything else goes to the least-pressured shard. A
// session-affine submission refused with ErrQueueFull is rerouted once
// to the least-pressured shard (a cold start beats a rejection); with
// every shard draining, Submit fails with ErrNoActiveShards.
func (f *Fleet) Submit(ctx context.Context, job Job) (*FleetHandle, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("vnpu: fleet closed: %w", ErrDestroyed)
	}
	f.mu.Unlock()
	affine := false
	if key, ok := routeKey(job); ok && (job.Reusable || f.promote(key)) {
		affine = true
		shard, ok := f.router.Owner(key)
		if !ok {
			return nil, fmt.Errorf("vnpu: every shard is draining: %w", ErrNoActiveShards)
		}
		h, err := f.shards[shard].Submit(ctx, job)
		if err == nil {
			return &FleetHandle{Handle: h, shard: shard}, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			return nil, err
		}
		// Fall through: the owner is saturated — a cold start elsewhere
		// beats bouncing the rejection to the caller.
	}
	shard, ok := f.router.PickLeast(f.pressure)
	if !ok {
		return nil, fmt.Errorf("vnpu: every shard is draining: %w", ErrNoActiveShards)
	}
	h, err := f.shards[shard].Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	if affine {
		f.mu.Lock()
		f.rerouted++
		f.mu.Unlock()
	}
	return &FleetHandle{Handle: h, shard: shard}, nil
}

// forward re-submits a stolen job on the given shard (or, when the shard
// is out of the rotation, the least-pressured active one) and mirrors
// the outcome back onto the job's original handle. Every failure path
// resolves the handle with a typed error — a stolen job can be refused,
// never lost.
func (f *Fleet) forward(st sched.Stolen[Job, JobReport], shard int) {
	if shard < 0 || !f.router.IsActive(shard) {
		var ok bool
		if shard, ok = f.router.PickLeast(f.pressure); !ok {
			st.Handle.Finish(JobReport{}, fmt.Errorf(
				"vnpu: job re-homed off a draining shard with no shard left to take it: %w", ErrNoActiveShards))
			return
		}
	}
	h2, err := f.shards[shard].disp.Submit(st.Ctx, st.Tenant, st.Class, st.Deadline, st.Job)
	if err != nil {
		st.Handle.Finish(JobReport{}, fmt.Errorf("vnpu: re-homing stolen job to shard %d: %w", shard, err))
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		<-h2.Done()
		select {
		case <-h2.Started():
			st.Handle.MarkStarted(h2.Chip())
		default:
		}
		rep, err := h2.Wait(context.Background())
		st.Handle.Finish(rep, err)
	}()
}

// stealLoop periodically moves queued best-effort work from the most- to
// the least-pressured shard. Only class-0 (best-effort) jobs move:
// higher classes place soon wherever they are, and moving them would
// reorder SLO traffic for nothing.
func (f *Fleet) stealLoop() {
	defer f.wg.Done()
	for {
		t := f.clk.NewTimer(stealInterval)
		select {
		case <-f.stop:
			t.Stop()
			return
		case <-t.C():
		}
		f.stealOnce()
	}
}

func (f *Fleet) stealOnce() {
	hi, lo := -1, -1
	var hiP, loP float64
	for s := range f.shards {
		if !f.router.IsActive(s) {
			continue
		}
		p := f.shards[s].Pressure()
		if hi < 0 || p > hiP {
			hi, hiP = s, p
		}
		if lo < 0 || p < loP {
			lo, loP = s, p
		}
	}
	if hi < 0 || hi == lo || hiP-loP < stealGap {
		return
	}
	stolen := f.shards[hi].disp.Steal(PriorityBestEffort.class(), stealBatch)
	if len(stolen) == 0 {
		return
	}
	f.mu.Lock()
	f.steals += uint64(len(stolen))
	f.mu.Unlock()
	for _, st := range stolen {
		f.forward(st, lo)
	}
}

// Drain takes a shard out of the rotation and empties it: admissions
// stop (its session keys re-home to the surviving shards immediately),
// its queued jobs are stolen and re-submitted on active shards, running
// work finishes in place, and its warm sessions are flushed once quiet.
// Drain returns when the shard is empty, or with ctx's error — the
// shard then keeps draining in the rotation sense but may still hold
// work. Draining an already-draining shard fails with ErrShardDraining.
// Every job admitted before the drain completes or fails typed; none
// are dropped.
func (f *Fleet) Drain(ctx context.Context, shard int) error {
	if shard < 0 || shard >= len(f.shards) {
		return fmt.Errorf("vnpu: no shard %d", shard)
	}
	if !f.router.Drain(shard) {
		return fmt.Errorf("vnpu: shard %d: %w", shard, ErrShardDraining)
	}
	f.mu.Lock()
	f.drains++
	f.mu.Unlock()
	// Re-home the whole queue, all classes: the shard is leaving, so
	// unlike the stealer there is no affinity left to respect.
	for {
		stolen := f.shards[shard].disp.Steal(NumPriorityClasses-1, stealBatch)
		if len(stolen) == 0 {
			break
		}
		f.mu.Lock()
		f.rehomed += uint64(len(stolen))
		f.mu.Unlock()
		for _, st := range stolen {
			f.forward(st, -1)
		}
	}
	for !f.shards[shard].quiesced() {
		t := f.clk.NewTimer(drainPoll)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C():
		}
	}
	f.shards[shard].flushSessions()
	return nil
}

// Rejoin puts a drained shard back into the rotation: the session keys
// it owned come home (their next submission cold-starts a session on
// it — re-establishment, not migration), and the balancer and stealer
// see it again. Rejoining an active shard is an error.
func (f *Fleet) Rejoin(shard int) error {
	if shard < 0 || shard >= len(f.shards) {
		return fmt.Errorf("vnpu: no shard %d", shard)
	}
	if !f.router.Rejoin(shard) {
		return fmt.Errorf("vnpu: shard %d is already active", shard)
	}
	f.mu.Lock()
	f.rejoins++
	f.mu.Unlock()
	return nil
}

// NumShards reports the fleet's shard count (active or draining).
func (f *Fleet) NumShards() int { return len(f.shards) }

// Shard returns the i-th shard's Cluster for inspection. Submitting to
// it directly bypasses the fleet's routing (and its draining checks).
func (f *Fleet) Shard(i int) *Cluster { return f.shards[i] }

// FleetStats is a snapshot of the fleet's serving counters.
type FleetStats struct {
	// Shards holds each shard's own serving counters, in shard order.
	Shards []ClusterStats
	// Pressure is each shard's current routing-pressure signal.
	Pressure []float64
	// ActiveShards counts shards currently taking traffic.
	ActiveShards int
	// Steals counts queued best-effort jobs the balancer moved off
	// overloaded shards; ReHomed counts queued jobs Drain moved off a
	// draining shard.
	Steals  uint64
	ReHomed uint64
	// Rerouted counts session-affine submissions that fell to a
	// least-pressure shard because their owner's queue was full.
	Rerouted uint64
	// Drains and Rejoins count membership transitions.
	Drains  uint64
	Rejoins uint64
}

// Stats returns a snapshot of the fleet's counters, including each
// shard's ClusterStats.
func (f *Fleet) Stats() FleetStats {
	s := FleetStats{
		Shards:       make([]ClusterStats, len(f.shards)),
		Pressure:     make([]float64, len(f.shards)),
		ActiveShards: f.router.ActiveCount(),
	}
	for i, c := range f.shards {
		s.Shards[i] = c.Stats()
		s.Pressure[i] = c.Pressure()
	}
	f.mu.Lock()
	s.Steals = f.steals
	s.ReHomed = f.rehomed
	s.Rerouted = f.rerouted
	s.Drains = f.drains
	s.Rejoins = f.rejoins
	f.mu.Unlock()
	return s
}

// Close stops the stealer, closes every shard (each waits for its
// admitted jobs) and joins the forwarding goroutines. Submissions after
// Close fail with ErrDestroyed.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("vnpu: fleet closed: %w", ErrDestroyed)
	}
	f.closed = true
	f.mu.Unlock()
	close(f.stop)
	var firstErr error
	for _, c := range f.shards {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.wg.Wait()
	return firstErr
}
