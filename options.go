package vnpu

import "github.com/vnpu-sim/vnpu/internal/sim"

// Option configures the virtual NPU a tenant asks for. Options layer over
// the plain Request struct: NewRequest (and Job.Options) applies them in
// order, so later options win. The struct remains available for callers
// that prefer to fill fields directly.
type Option func(*Request)

// NewRequest builds a Request for the given topology with the options
// applied.
func NewRequest(t *Topology, opts ...Option) Request {
	req := Request{Topology: t}
	for _, opt := range opts {
		if opt != nil {
			opt(&req)
		}
	}
	return req
}

// WithStrategy selects the core-allocation policy (default
// StrategySimilar, the paper's best-effort edit-distance mapping).
func WithStrategy(s Strategy) Option {
	return func(r *Request) { r.Strategy = s }
}

// WithMemory preallocates the given bytes of global memory. Cluster jobs
// that omit it are sized automatically from the model's footprint.
func WithMemory(bytes uint64) Option {
	return func(r *Request) { r.MemoryBytes = bytes }
}

// WithConfinement requests NoC non-interference: the vNPU's packets never
// cross foreign cores (§4.1.2).
func WithConfinement(confined bool) Option {
	return func(r *Request) { r.Confined = confined }
}

// WithTranslation selects the memory-virtualization mode (default
// TranslationRange, the paper's vChunk).
func WithTranslation(m TranslationMode) Option {
	return func(r *Request) { r.Translation = m }
}

// WithPageTLBEntries sizes the IOTLB in TranslationPage mode.
func WithPageTLBEntries(n int) Option {
	return func(r *Request) { r.PageTLBEntries = n }
}

// WithMemChannels pins the number of HBM interfaces the vNPU spans
// (default: a share proportional to its core count).
func WithMemChannels(n int) Option {
	return func(r *Request) { r.MemChannels = n }
}

// WithBandwidthCap installs the vChunk access-counter bandwidth cap:
// at most maxBytes of global-memory traffic per window of windowCycles.
func WithBandwidthCap(maxBytes, windowCycles int64) Option {
	return func(r *Request) {
		r.BandwidthCapBytes = maxBytes
		r.BandwidthWindow = sim.Cycles(windowCycles)
	}
}

// WithKVBuffer reserves bytes of every core's scratchpad as a fixed KV
// cache buffer for decode-phase transformer workloads (§7); size it with
// KVBufferBytesPerCore.
func WithKVBuffer(bytes int64) Option {
	return func(r *Request) { r.KVBufferBytes = bytes }
}

// Scheduling options of the cluster's admission core. They are
// ClusterOptions (not per-Request options) because ordering policy is a
// property of the serving front-end, not of one vNPU.

// WithDefaultPriority sets the class a Job with PriorityDefault resolves
// to (default PriorityNormal). Explicit out-of-range priorities are
// clamped to [PriorityBestEffort, PriorityCritical].
func WithDefaultPriority(p Priority) ClusterOption {
	return func(c *clusterConfig) { c.defaultPriority = p }
}

// WithTenantPriorityCap caps one tenant's scheduling class: jobs the
// tenant submits above the cap are silently clamped down to it, on both
// serving paths. Use it to keep batch tenants out of the SLO classes
// without rejecting their traffic.
func WithTenantPriorityCap(tenant string, max Priority) ClusterOption {
	return func(c *clusterConfig) {
		if c.priorityCaps == nil {
			c.priorityCaps = make(map[string]Priority)
		}
		c.priorityCaps[tenant] = max
	}
}

// WithAgingRounds tunes starvation protection: a queued job is promoted
// one class after waiting this many scheduling rounds (pops) in its
// class, bounding any admitted job's wait to
// O(NumPriorityClasses x rounds) rounds regardless of higher-class
// pressure. The default is queue.DefaultAgingRounds; negative values
// disable aging (strict classes).
func WithAgingRounds(rounds int) ClusterOption {
	return func(c *clusterConfig) { c.agingRounds = rounds }
}
