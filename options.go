package vnpu

import "github.com/vnpu-sim/vnpu/internal/sim"

// Option configures the virtual NPU a tenant asks for. Options layer over
// the plain Request struct: NewRequest (and Job.Options) applies them in
// order, so later options win. The struct remains available for callers
// that prefer to fill fields directly.
type Option func(*Request)

// NewRequest builds a Request for the given topology with the options
// applied.
func NewRequest(t *Topology, opts ...Option) Request {
	req := Request{Topology: t}
	for _, opt := range opts {
		if opt != nil {
			opt(&req)
		}
	}
	return req
}

// WithStrategy selects the core-allocation policy (default
// StrategySimilar, the paper's best-effort edit-distance mapping).
func WithStrategy(s Strategy) Option {
	return func(r *Request) { r.Strategy = s }
}

// WithMemory preallocates the given bytes of global memory. Cluster jobs
// that omit it are sized automatically from the model's footprint.
func WithMemory(bytes uint64) Option {
	return func(r *Request) { r.MemoryBytes = bytes }
}

// WithConfinement requests NoC non-interference: the vNPU's packets never
// cross foreign cores (§4.1.2).
func WithConfinement(confined bool) Option {
	return func(r *Request) { r.Confined = confined }
}

// WithTranslation selects the memory-virtualization mode (default
// TranslationRange, the paper's vChunk).
func WithTranslation(m TranslationMode) Option {
	return func(r *Request) { r.Translation = m }
}

// WithPageTLBEntries sizes the IOTLB in TranslationPage mode.
func WithPageTLBEntries(n int) Option {
	return func(r *Request) { r.PageTLBEntries = n }
}

// WithMemChannels pins the number of HBM interfaces the vNPU spans
// (default: a share proportional to its core count).
func WithMemChannels(n int) Option {
	return func(r *Request) { r.MemChannels = n }
}

// WithBandwidthCap installs the vChunk access-counter bandwidth cap:
// at most maxBytes of global-memory traffic per window of windowCycles.
func WithBandwidthCap(maxBytes, windowCycles int64) Option {
	return func(r *Request) {
		r.BandwidthCapBytes = maxBytes
		r.BandwidthWindow = sim.Cycles(windowCycles)
	}
}

// WithKVBuffer reserves bytes of every core's scratchpad as a fixed KV
// cache buffer for decode-phase transformer workloads (§7); size it with
// KVBufferBytesPerCore.
func WithKVBuffer(bytes int64) Option {
	return func(r *Request) { r.KVBufferBytes = bytes }
}
