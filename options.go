package vnpu

import (
	"time"

	"github.com/vnpu-sim/vnpu/internal/obs"
	"github.com/vnpu-sim/vnpu/internal/obs/slo"
	"github.com/vnpu-sim/vnpu/internal/sim"
)

// Clock abstracts time for the serving stack: WallClock() for
// production, NewVirtualClock for tests and trace replay (see
// VirtualClock). Inject one with WithClock.
type Clock = sim.Clock

// VirtualClock is a Clock whose time only moves when explicitly
// advanced, with a deterministic calendar of pending timers. The fleet's
// -virtual trace replay and clock-sensitive tests run on one.
type VirtualClock = sim.VirtualClock

// WallClock returns the process-wide wall clock (the default).
func WallClock() Clock { return sim.Wall() }

// NewVirtualClock returns a VirtualClock reading start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return sim.NewVirtualClock(start)
}

// Option configures the virtual NPU a tenant asks for. Options layer over
// the plain Request struct: NewRequest (and Job.Options) applies them in
// order, so later options win. The struct remains available for callers
// that prefer to fill fields directly.
type Option func(*Request)

// NewRequest builds a Request for the given topology with the options
// applied.
func NewRequest(t *Topology, opts ...Option) Request {
	req := Request{Topology: t}
	for _, opt := range opts {
		if opt != nil {
			opt(&req)
		}
	}
	return req
}

// WithStrategy selects the core-allocation policy (default
// StrategySimilar, the paper's best-effort edit-distance mapping).
func WithStrategy(s Strategy) Option {
	return func(r *Request) { r.Strategy = s }
}

// WithMemory preallocates the given bytes of global memory. Cluster jobs
// that omit it are sized automatically from the model's footprint.
func WithMemory(bytes uint64) Option {
	return func(r *Request) { r.MemoryBytes = bytes }
}

// WithConfinement requests NoC non-interference: the vNPU's packets never
// cross foreign cores (§4.1.2).
func WithConfinement(confined bool) Option {
	return func(r *Request) { r.Confined = confined }
}

// WithTranslation selects the memory-virtualization mode (default
// TranslationRange, the paper's vChunk).
func WithTranslation(m TranslationMode) Option {
	return func(r *Request) { r.Translation = m }
}

// WithPageTLBEntries sizes the IOTLB in TranslationPage mode.
func WithPageTLBEntries(n int) Option {
	return func(r *Request) { r.PageTLBEntries = n }
}

// WithMemChannels pins the number of HBM interfaces the vNPU spans
// (default: a share proportional to its core count).
func WithMemChannels(n int) Option {
	return func(r *Request) { r.MemChannels = n }
}

// WithBandwidthCap installs the vChunk access-counter bandwidth cap:
// at most maxBytes of global-memory traffic per window of windowCycles.
func WithBandwidthCap(maxBytes, windowCycles int64) Option {
	return func(r *Request) {
		r.BandwidthCapBytes = maxBytes
		r.BandwidthWindow = sim.Cycles(windowCycles)
	}
}

// WithKVBuffer reserves bytes of every core's scratchpad as a fixed KV
// cache buffer for decode-phase transformer workloads (§7); size it with
// KVBufferBytesPerCore.
func WithKVBuffer(bytes int64) Option {
	return func(r *Request) { r.KVBufferBytes = bytes }
}

// Scheduling options of the cluster's admission core. They are
// ClusterOptions (not per-Request options) because ordering policy is a
// property of the serving front-end, not of one vNPU.

// WithDefaultPriority sets the class a Job with PriorityDefault resolves
// to (default PriorityNormal). Explicit out-of-range priorities are
// clamped to [PriorityBestEffort, PriorityCritical].
func WithDefaultPriority(p Priority) ClusterOption {
	return func(c *clusterConfig) { c.defaultPriority = p }
}

// WithTenantPriorityCap caps one tenant's scheduling class: jobs the
// tenant submits above the cap are silently clamped down to it, on both
// serving paths. Use it to keep batch tenants out of the SLO classes
// without rejecting their traffic.
func WithTenantPriorityCap(tenant string, max Priority) ClusterOption {
	return func(c *clusterConfig) {
		if c.priorityCaps == nil {
			c.priorityCaps = make(map[string]Priority)
		}
		c.priorityCaps[tenant] = max
	}
}

// WithAgingRounds tunes starvation protection: a queued job is promoted
// one class after waiting this many scheduling rounds (pops) in its
// class, bounding any admitted job's wait to
// O(NumPriorityClasses x rounds) rounds regardless of higher-class
// pressure. The default is queue.DefaultAgingRounds; negative values
// disable aging (strict classes).
func WithAgingRounds(rounds int) ClusterOption {
	return func(c *clusterConfig) { c.agingRounds = rounds }
}

// WithMapperWorkers sizes the placement engine's async mapper worker
// pool (default place.DefaultWorkers; n <= 0 selects the default).
// Mapping misses — hits-first parked jobs, prewarm speculation and
// blocking placements alike — compute on these workers, so at most n
// topology mappings run concurrently on behalf of the serving paths.
// Size it to the cores you can spare beside the simulator: more workers
// drain mapping backlogs faster under shape churn, fewer keep the mapper
// from competing with job execution on small hosts.
func WithMapperWorkers(n int) ClusterOption {
	return func(c *clusterConfig) { c.mapperWorkers = n }
}

// WithClock injects the clock every serving-path timestamp and timer
// reads: the dispatcher's deadline checks and queue-wait accounting, the
// session pool's TTL janitor, the placement engine's latency stats and
// negative-result TTL. Default is the wall clock. Inject a VirtualClock
// to drive a cluster in simulated time — deadlines, TTL expiry and
// latency percentiles then move only when the clock is advanced.
func WithClock(clk Clock) ClusterOption {
	return func(c *clusterConfig) { c.clock = clk }
}

// WithPlacementNegativeTTL tunes the placement engine's negative-result
// memoization (default place.DefaultNegativeTTL; zero or negative
// disables it). A topology that just failed to map on a chip is refused
// again without re-running the mapper for the TTL, as long as the chip's
// free capacity has not grown since the failure — commits elsewhere on
// the chip shift the free-set signature without making the failure any
// more curable, so repeated map-parks of an unsatisfiable shape coalesce
// instead of burning a mapper run per shift. Any release or session
// eviction on the chip clears its memoized failures immediately.
func WithPlacementNegativeTTL(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.negTTL = &d }
}

// WithPlacementRegret sets the hits-first regret tolerance in edit-
// distance units (default 0). A job whose topology has a cached valid
// mapping of cost <= r on some adequate chip starts there immediately —
// without waiting for the mappings of the remaining chips — so its
// placement cost exceeds the exhaustive cold optimum by at most r (the
// optimum is never negative; property-tested). r = 0 admits only exact
// (cost-0) cached placements to the fast path; larger r trades placement
// quality for dispatch latency on fragmented fleets. A negative r
// disables hits-first dispatch entirely: every job waits for its full
// rank, restoring the strict cached==cold ordering of earlier releases.
//
// The bound covers the edit-distance score only: chip-price and load
// tiebreaks among equal-cost placements may still differ from the cold
// rank's choice.
func WithPlacementRegret(r float64) ClusterOption {
	return func(c *clusterConfig) { c.regret = &r }
}

// WithPlacementRegretTarget replaces the static hits-first bound with a
// closed-loop one: the cluster adjusts the live regret bound so the
// pct-quantile (0 < pct <= 1, e.g. 0.99) of the realized regret
// distribution — sampled per hits-first dispatch into the window
// PlacementStats reports — stays at or under target edit-distance units.
// The controller grows the bound while realized regret runs comfortably
// under the target (admitting more dispatches to the fast path) and
// shrinks it toward the target when the quantile overshoots, so the
// bound tracks fleet fragmentation instead of being hand-tuned per
// workload. A WithPlacementRegret value, when also given, seeds the
// bound; it is never tuned below target (a bound of target satisfies
// the objective trivially, since realized regret cannot exceed the
// bound in force when the job dispatched). Read the live bound with
// Cluster.RegretBound.
func WithPlacementRegretTarget(pct, target float64) ClusterOption {
	return func(c *clusterConfig) {
		c.regretTargetPct = &pct
		c.regretTarget = target
	}
}

// WithTracing records every job's lifecycle transitions (submit →
// admitted → placed[hit|miss|map-parked] → session[warm|cold|batched] →
// executing → done/failed) into per-shard ring buffers stamped from the
// cluster's clock, so wall-clock and virtual-time runs produce
// identically shaped traces. Read the window with Cluster.TraceSnapshot
// or export it as Chrome trace_event JSON (obs.WriteChrome; vnpuserve
// -trace). Off by default: the hot paths then pay a single nil check
// per stage. See WithTraceBufferSize for the window bound.
func WithTracing() ClusterOption {
	return func(c *clusterConfig) { c.tracing = true }
}

// WithTraceBufferSize bounds the per-shard trace ring to n events
// (default obs.DefaultTraceBuffer). Once full, the oldest events are
// overwritten; the drop count is exported as vnpu_trace_dropped_total
// and stamped into Chrome exports as metadata.droppedEvents.
func WithTraceBufferSize(n int) ClusterOption {
	return func(c *clusterConfig) { c.traceBuf = n }
}

// SLO declares one service-level objective for the cluster's error-
// budget tracker (WithSLO): jobs matching Tenant and Priority must
// finish successfully within Target at the given Percentile, and at
// least Availability of them must be good, measured over a sliding
// Window.
type SLO struct {
	// Tenant scopes the objective to one tenant; empty covers every
	// tenant, with the tracker keeping an independent budget series per
	// tenant it sees.
	Tenant string
	// Priority scopes the objective to one class; PriorityDefault covers
	// all classes, with an independent series per class.
	Priority Priority
	// Target is the per-job end-to-end sojourn bound (submit to done). A
	// job is good when it completes without error within Target.
	Target time.Duration
	// Percentile is the latency quantile reported alongside the budget
	// (default 0.99). The budget itself counts per-job good/bad outcomes.
	Percentile float64
	// Availability is the good fraction the budget protects (default
	// 0.999, i.e. a 0.1% error budget).
	Availability float64
	// Window is the sliding budget window (default one minute).
	Window time.Duration
}

// objective lowers the public declaration onto the tracker's form.
func (s SLO) objective() slo.Objective {
	class := -1
	if s.Priority != PriorityDefault {
		class = s.Priority.class()
	}
	return slo.Objective{
		Tenant:       s.Tenant,
		Class:        class,
		Target:       s.Target,
		Percentile:   s.Percentile,
		Availability: s.Availability,
		Window:       s.Window,
	}
}

// WithSLO installs per-(tenant, class) error-budget tracking for the
// given objectives. The tracker watches both serving paths through the
// same lifecycle seam as tracing (but independently of it — tracing may
// stay off), maintains multi-window burn rates per matching series, and
// surfaces them at /debug/slo on Handler's mux plus the vnpu_slo_*
// metric families on /metrics. Read it programmatically with
// Cluster.SLOReport / Fleet.SLOReport.
func WithSLO(objectives ...SLO) ClusterOption {
	return func(c *clusterConfig) { c.slos = append(c.slos, objectives...) }
}

// withSharedSLO is the fleet's internal wiring: every shard scores jobs
// into one fleet-wide tracker, whose collector the fleet registers
// exactly once (a shard-level registration would duplicate the series).
func withSharedSLO(tr *slo.Tracker) ClusterOption {
	return func(c *clusterConfig) { c.sloShared = tr }
}

// withShardObs is the fleet's internal wiring: every shard writes trace
// events into one shared recorder under its own shard index, and labels
// its metric series with that index. Installed by NewFleet; not part of
// the public option surface.
func withShardObs(rec *obs.Recorder, shard int) ClusterOption {
	return func(c *clusterConfig) {
		c.recorder = rec
		c.shard = shard
	}
}
