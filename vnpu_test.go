package vnpu

import (
	"strings"
	"testing"
)

func TestSystemLifecycle(t *testing.T) {
	sys, err := NewSystem(FPGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.FreeCores() != 8 || sys.Utilization() != 0 {
		t.Fatalf("fresh system: free=%d util=%v", sys.FreeCores(), sys.Utilization())
	}
	v, err := sys.Create(Request{Topology: Mesh(2, 2), MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if sys.FreeCores() != 4 || len(sys.VirtualNPUs()) != 1 {
		t.Fatalf("after create: free=%d vnpus=%d", sys.FreeCores(), len(sys.VirtualNPUs()))
	}
	if err := sys.Destroy(v); err != nil {
		t.Fatal(err)
	}
	if sys.FreeCores() != 8 {
		t.Fatalf("after destroy: free=%d", sys.FreeCores())
	}
}

func TestRunModelQuickstart(t *testing.T) {
	sys, err := NewSystem(FPGAConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelByName("yololite")
	if err != nil {
		t.Fatal(err)
	}
	memBytes, err := sys.ModelMemoryBytes(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.Create(Request{Topology: Mesh(2, 2), MemoryBytes: memBytes})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunModel(v, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FPS <= 0 || rep.Cycles <= 0 || rep.Iterations != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.WarmupCycles <= 0 && !rep.Streaming {
		t.Fatal("resident weights imply a warm-up cost")
	}
}

func TestRunModelRequiresMemory(t *testing.T) {
	sys, _ := NewSystem(FPGAConfig())
	m, _ := ModelByName("yololite")
	v, err := sys.Create(Request{Topology: Mesh(2, 2)}) // no memory
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunModel(v, m, 1); err == nil || !strings.Contains(err.Error(), "ModelMemoryBytes") {
		t.Fatalf("err = %v, want sizing hint", err)
	}
}

func TestTopologyHelpers(t *testing.T) {
	if Mesh(2, 3).NumNodes() != 6 || Chain(4).NumEdges() != 3 || NearMesh(13).NumNodes() != 13 {
		t.Fatal("topology helpers broken")
	}
}

func TestModelZooAccess(t *testing.T) {
	names := ModelNames()
	if len(names) < 10 {
		t.Fatalf("zoo = %v", names)
	}
	for _, n := range names {
		if _, err := ModelByName(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := ModelByName("missing"); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestTwoTenantsIsolated(t *testing.T) {
	sys, _ := NewSystem(FPGAConfig())
	m, _ := ModelByName("yololite")
	mem4, _ := sys.ModelMemoryBytes(m, 4)
	a, err := sys.Create(Request{Topology: Mesh(2, 2), MemoryBytes: mem4, Confined: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Create(Request{Topology: Mesh(2, 2), MemoryBytes: mem4, Confined: true})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sys.RunModel(a, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sys.RunModel(b, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ra.FPS <= 0 || rb.FPS <= 0 {
		t.Fatalf("reports: %+v %+v", ra, rb)
	}
	if sys.Utilization() != 1 {
		t.Fatalf("utilization = %v", sys.Utilization())
	}
}
