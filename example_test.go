package vnpu_test

import (
	"fmt"
	"log"

	"github.com/vnpu-sim/vnpu"
)

// Example boots a chip, carves out a virtual NPU and runs a model on it.
func Example() {
	sys, err := vnpu.NewSystem(vnpu.SimConfig())
	if err != nil {
		log.Fatal(err)
	}
	model, err := vnpu.ModelByName("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	mem, err := sys.ModelMemoryBytes(model, 12)
	if err != nil {
		log.Fatal(err)
	}
	v, err := sys.Create(vnpu.Request{
		Topology:    vnpu.Mesh(3, 4),
		Confined:    true,
		MemoryBytes: mem,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.RunModel(v, model, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cores: %d\n", v.NumCores())
	fmt.Printf("exact topology: %v\n", v.MapCost() == 0)
	fmt.Printf("made progress: %v\n", rep.FPS > 0)
	// Output:
	// cores: 12
	// exact topology: true
	// made progress: true
}

// ExampleSystem_Create shows the topology lock-in problem and the
// best-effort mapping that resolves it.
func ExampleSystem_Create() {
	cfg := vnpu.SimConfig()
	cfg.MeshRows, cfg.MeshCols = 5, 5
	sys, err := vnpu.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// First tenant takes an exact 3x3.
	if _, err := sys.Create(vnpu.Request{Topology: vnpu.Mesh(3, 3), Strategy: vnpu.StrategyExact}); err != nil {
		log.Fatal(err)
	}
	// No intact 3x3 remains: exact mapping locks in.
	_, err = sys.Create(vnpu.Request{Topology: vnpu.Mesh(3, 3), Strategy: vnpu.StrategyExact})
	fmt.Printf("exact fails: %v\n", err != nil)
	// Best-effort similar mapping still serves the tenant.
	v, err := sys.Create(vnpu.Request{Topology: vnpu.Mesh(3, 3), Strategy: vnpu.StrategySimilar})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similar cores: %d (connected: %v)\n", v.NumCores(), v.Connected())
	fmt.Printf("utilization: %.0f%%\n", sys.Utilization()*100)
	// Output:
	// exact fails: true
	// similar cores: 9 (connected: true)
	// utilization: 72%
}
