package vnpu

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment end to end — workload generation, allocation,
// simulation — and reports the headline number of that figure as a custom
// metric, so `go test -bench=. -benchmem` reproduces the whole evaluation.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/vnpu-sim/vnpu/internal/experiments"
)

// BenchmarkFig02Evolution regenerates the NPU resource survey (Fig 2).
func BenchmarkFig02Evolution(b *testing.B) {
	var gens int
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2()
		gens = len(r.Generations)
	}
	b.ReportMetric(float64(gens), "chips")
}

// BenchmarkFig03Utilization regenerates the TPU FLOPS-utilization sweep
// (Fig 3) and reports the fraction of models under 50% at batch 1.
func BenchmarkFig03Utilization(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3()
		frac = r.FractionUnder50AtBatch1()
	}
	b.ReportMetric(frac*100, "%under50")
}

// BenchmarkFig06MemTrace regenerates the ResNet DMA address trace (Fig 6)
// and reports the number of traced bursts.
func BenchmarkFig06MemTrace(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		if !r.MonotonicOK || !r.RepeatsOK {
			b.Fatal("access patterns violated")
		}
		points = len(r.Recorder.Points())
	}
	b.ReportMetric(float64(points), "bursts")
}

// BenchmarkFig11RoutingTableConfig regenerates the routing-table setup
// sweep (Fig 11) and reports the 8-core total in clocks.
func BenchmarkFig11RoutingTableConfig(b *testing.B) {
	var total int64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		total = int64(r.Points[len(r.Points)-1].Total())
	}
	b.ReportMetric(float64(total), "clk@8cores")
}

// BenchmarkFig12InstructionDispatch regenerates the dispatch-latency
// comparison (Fig 12) and reports the kernel/dispatch ratio.
func BenchmarkFig12InstructionDispatch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.MinRatio()
	}
	b.ReportMetric(ratio, "kernel/dispatch")
}

// BenchmarkTable3NoCVirtualization regenerates the vSend/vReceive
// micro-test (Table 3) and reports the worst-case overhead percentage on
// transfers of 10+ packets.
func BenchmarkTable3NoCVirtualization(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		pct = 0
		for _, row := range r.Rows[1:] {
			if p := row.SendOverheadPct(); p > pct {
				pct = p
			}
		}
	}
	b.ReportMetric(pct, "%overhead")
}

// BenchmarkFig13Broadcast regenerates the broadcast comparison (Fig 13)
// and reports the average vRouter speedup over memory synchronization.
func BenchmarkFig13Broadcast(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig13()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.AvgSpeedup()
	}
	b.ReportMetric(speedup, "x")
}

// BenchmarkFig14MemoryVirtualization regenerates the translation-mechanism
// comparison (Fig 14) and reports the IOTLB4 overhead percentage.
func BenchmarkFig14MemoryVirtualization(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig14()
		if err != nil {
			b.Fatal(err)
		}
		pct = r.AvgOverheadPct("IOTLB4")
	}
	b.ReportMetric(pct, "%iotlb4")
}

// BenchmarkFig15VersusUVM regenerates the UVM comparison (Fig 15) and
// reports the best transformer speedup.
func BenchmarkFig15VersusUVM(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig15()
		if err != nil {
			b.Fatal(err)
		}
		for name, c := range r.Single {
			if len(name) > 11 && name[:11] == "Transformer" && c.Speedup() > speedup {
				speedup = c.Speedup()
			}
		}
	}
	b.ReportMetric(speedup, "x_transformer")
}

// BenchmarkFig16VersusMIG regenerates the MIG comparison (Fig 16) and
// reports the GPT2-large speedup over the TDM'd MIG slice.
func BenchmarkFig16VersusMIG(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig16()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Scenarios[1].Results[1].SpeedupVsMIG()
	}
	b.ReportMetric(speedup, "x_gpt2l")
}

// BenchmarkFig17MappingView regenerates the mapping illustration (Fig 17)
// and reports the straightforward mapping's edit-distance penalty.
func BenchmarkFig17MappingView(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig17()
		if err != nil {
			b.Fatal(err)
		}
		penalty = r.StraightCost - r.SimilarCost
	}
	b.ReportMetric(penalty, "TED_penalty")
}

// BenchmarkFig18TopologyMapping regenerates the mapping-strategy sweep
// (Fig 18) and reports the peak ResNet improvement percentage.
func BenchmarkFig18TopologyMapping(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig18()
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, p := range r.Points {
			if imp := p.ImprovementPct(); imp > best {
				best = imp
			}
		}
	}
	b.ReportMetric(best, "%peak")
}

// BenchmarkFig19HardwareCost regenerates the resource cost model (Fig 19)
// and reports the maximum percentage across structures.
func BenchmarkFig19HardwareCost(b *testing.B) {
	var max float64
	for i := 0; i < b.N; i++ {
		max = experiments.RunFig19().MaxPct()
	}
	b.ReportMetric(max, "%max")
}

// BenchmarkTable1Taxonomy regenerates the qualitative comparison (Table 1).
func BenchmarkTable1Taxonomy(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.RunTable1().Rows)
	}
	b.ReportMetric(float64(rows), "mechanisms")
}

// BenchmarkClusterThroughput measures the serving path end to end — a
// 4-chip cluster fed by 64 tenants submitting mixed zoo models — and
// reports completed jobs per wall-clock second. This is the perf baseline
// for future serving-path PRs.
func BenchmarkClusterThroughput(b *testing.B) {
	cluster, err := NewCluster(SimConfig(), 4, WithQueueDepth(256))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	type mix struct {
		model Model
		topo  *Topology
	}
	names := []string{"alexnet", "resnet18", "mobilenet", "googlenet", "resnet34", "gpt2-small"}
	topos := []*Topology{Mesh(2, 2), Mesh(2, 3), Mesh(3, 3), Mesh(3, 4), Chain(4), Mesh(2, 3)}
	mixes := make([]mix, len(names))
	for i, n := range names {
		m, err := ModelByName(n)
		if err != nil {
			b.Fatal(err)
		}
		mixes[i] = mix{m, topos[i]}
	}

	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	var handles []*Handle
	for i := 0; i < b.N; i++ {
		mx := mixes[i%len(mixes)]
		job := Job{
			Tenant:   fmt.Sprintf("tenant-%02d", i%64),
			Model:    mx.model,
			Topology: mx.topo,
		}
		for {
			h, err := cluster.Submit(ctx, job)
			if err == nil {
				handles = append(handles, h)
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			// Backpressure: drain the oldest outstanding job, then retry.
			if len(handles) > 0 {
				if _, werr := handles[0].Wait(ctx); werr != nil {
					b.Fatal(werr)
				}
				handles = handles[1:]
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
}

// benchChipConcurrency drives four disjoint 4x4 vNPUs on one 16x16 chip
// and reports jobs per second. With slots=1 the dispatcher serializes
// execution (the pre-timing-domain behavior); with slots=4 the four
// regions execute overlapped in their own timing domains. The ratio
// between the two arms is the spatial-concurrency win; simulation is
// CPU-bound, so realizing it needs GOMAXPROCS >= the region count (on a
// single-CPU host the arms tie, minus GC pressure from the co-resident
// runs' working sets).
func benchChipConcurrency(b *testing.B, slots int) {
	cfg := SimConfig()
	cfg.Name = "sim-16x16"
	cfg.MeshRows, cfg.MeshCols = 16, 16
	cluster, err := NewCluster(cfg, 1, WithQueueDepth(64), WithChipSlots(slots))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	model, err := ModelByName("alexnet")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const regions = 4
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles := make([]*Handle, regions)
		for r := 0; r < regions; r++ {
			h, err := cluster.Submit(ctx, Job{
				Tenant:   fmt.Sprintf("region-%d", r),
				Model:    model,
				Topology: Mesh(4, 4),
				// Enough simulated iterations that execution, not the
				// create path, dominates each job — the regime where
				// serialized execution was the throughput ceiling.
				Iterations: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			handles[r] = h
		}
		for _, h := range handles {
			if _, err := h.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*regions)/time.Since(start).Seconds(), "jobs/s")
	if slots > 1 {
		b.ReportMetric(cluster.Stats().ExecOverlapAvg, "overlap")
	}
}

// BenchmarkChipConcurrency measures overlapped execution of four
// disjoint 4x4 vNPUs on a 16x16 chip; compare against
// BenchmarkChipConcurrencySerialized for the speedup (target: >=2x).
func BenchmarkChipConcurrency(b *testing.B) { benchChipConcurrency(b, 4) }

// BenchmarkChipConcurrencySerialized is the slots=1 baseline: the same
// four-region workload behind a single execution slot, reproducing the
// old chip-wide execution lock.
func BenchmarkChipConcurrencySerialized(b *testing.B) { benchChipConcurrency(b, 1) }

// benchSessionPath drives a steady stream of identical small decode-phase
// jobs at a single chip, with or without the session pool — the warm/cold
// comparison behind the session-reuse PR. The simulated work is identical
// either way; the ns/op delta is pure serving overhead (placement, vNPU
// create/destroy, per-job compile).
func benchSessionPath(b *testing.B, reuse bool) {
	opts := []ClusterOption{WithQueueDepth(256)}
	if reuse {
		opts = append(opts, WithSessionReuse(), WithSessionIdleTTL(time.Hour))
	}
	cluster, err := NewCluster(FPGAConfig(), 1, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	// A single decode step on an 8-core mesh: the simulated run is a few
	// microseconds of host time while the create path (routing tables,
	// RTT configuration, buddy blocks across 8 cores) costs ~30x that —
	// the regime the paper's §2.2 decode analysis describes, where
	// serving overhead, not compute, bounds throughput.
	job := Job{
		Tenant:   "decode",
		Model:    DecodeModel(1, 64, 16),
		Topology: Mesh(2, 4),
		Reusable: true,
	}
	ctx := context.Background()
	warmup := func() {
		h, err := cluster.Submit(ctx, job)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	warmup() // first job is always cold; keep it out of the measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := cluster.Submit(ctx, job)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if reuse {
		s := cluster.SessionStats()
		b.ReportMetric(s.HitRate()*100, "%warm")
	}
}

// BenchmarkSessionWarm measures per-job serving overhead with session
// reuse on: every measured job leases the resident warm vNPU, skipping
// placement, creation and compilation.
func BenchmarkSessionWarm(b *testing.B) { benchSessionPath(b, true) }

// BenchmarkSessionCold measures the same traffic without the pool: every
// job pays create→map→compile→run→destroy. The ratio to
// BenchmarkSessionWarm is the create-path skip.
func BenchmarkSessionCold(b *testing.B) { benchSessionPath(b, false) }

// BenchmarkClusterThroughputReuse is BenchmarkClusterThroughput with the
// session pool on and repeat-heavy traffic (8 tenants cycling 6 shapes):
// the steady state serves mostly warm leases and micro-queue batches. The
// delta against BenchmarkClusterThroughput is the serving win of skipping
// the create path.
func BenchmarkClusterThroughputReuse(b *testing.B) {
	cluster, err := NewCluster(SimConfig(), 4, WithQueueDepth(256),
		WithSessionReuse(), WithSessionIdleTTL(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	type mix struct {
		model Model
		topo  *Topology
	}
	names := []string{"alexnet", "resnet18", "mobilenet", "googlenet", "resnet34", "gpt2-small"}
	topos := []*Topology{Mesh(2, 2), Mesh(2, 3), Mesh(3, 3), Mesh(3, 4), Chain(4), Mesh(2, 3)}
	mixes := make([]mix, len(names))
	for i, n := range names {
		m, err := ModelByName(n)
		if err != nil {
			b.Fatal(err)
		}
		mixes[i] = mix{m, topos[i]}
	}

	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	var handles []*Handle
	for i := 0; i < b.N; i++ {
		mx := mixes[i%len(mixes)]
		job := Job{
			Tenant:   fmt.Sprintf("tenant-%02d", i%8),
			Model:    mx.model,
			Topology: mx.topo,
			Reusable: true,
		}
		for {
			h, err := cluster.Submit(ctx, job)
			if err == nil {
				handles = append(handles, h)
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			if len(handles) > 0 {
				if _, werr := handles[0].Wait(ctx); werr != nil {
					b.Fatal(werr)
				}
				handles = handles[1:]
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	b.ReportMetric(cluster.SessionStats().HitRate()*100, "%warm")
}

// BenchmarkClusterThroughputPriority is BenchmarkClusterThroughput under
// a priority-mix workload (10% critical, 20% high, 40% normal, 30%
// best-effort, round-robin over the same model/topology mix): aggregate
// throughput must stay close to the FIFO-era baseline while the
// scheduler core reorders admission. The reported p99 ratio is
// best-effort p99 queueing latency over critical p99 (higher = stronger
// differentiation).
func BenchmarkClusterThroughputPriority(b *testing.B) {
	cluster, err := NewCluster(SimConfig(), 4, WithQueueDepth(256))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	type mix struct {
		model Model
		topo  *Topology
	}
	names := []string{"alexnet", "resnet18", "mobilenet", "googlenet", "resnet34", "gpt2-small"}
	topos := []*Topology{Mesh(2, 2), Mesh(2, 3), Mesh(3, 3), Mesh(3, 4), Chain(4), Mesh(2, 3)}
	mixes := make([]mix, len(names))
	for i, n := range names {
		m, err := ModelByName(n)
		if err != nil {
			b.Fatal(err)
		}
		mixes[i] = mix{m, topos[i]}
	}
	// Deterministic mix over 10 slots: 1 critical, 2 high, 4 normal, 3
	// best-effort.
	prioOf := func(i int) Priority {
		switch i % 10 {
		case 0:
			return PriorityCritical
		case 1, 2:
			return PriorityHigh
		case 3, 4, 5, 6:
			return PriorityNormal
		default:
			return PriorityBestEffort
		}
	}

	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	var handles []*Handle
	for i := 0; i < b.N; i++ {
		mx := mixes[i%len(mixes)]
		job := Job{
			Tenant:   fmt.Sprintf("tenant-%02d", i%64),
			Model:    mx.model,
			Topology: mx.topo,
			Priority: prioOf(i),
		}
		for {
			h, err := cluster.Submit(ctx, job)
			if err == nil {
				handles = append(handles, h)
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			if len(handles) > 0 {
				if _, werr := handles[0].Wait(ctx); werr != nil {
					b.Fatal(werr)
				}
				handles = handles[1:]
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	ss := cluster.SchedStats()
	crit := ss.Classes[PriorityCritical.class()].P99Wait
	be := ss.Classes[PriorityBestEffort.class()].P99Wait
	if crit > 0 {
		b.ReportMetric(float64(be)/float64(crit), "p99_be/crit")
	}
}

// BenchmarkDispatchHitsFirst measures dispatch latency under the
// asynchronous placement pipeline: mixed-shape traffic over two chips
// whose free sets churn with every create/destroy, so mapping misses
// recur throughout the run. Jobs start from cached mappings when the
// regret bound allows (hits-first) and park on the async mappers
// otherwise — the dispatch loop never blocks on a mapper run. Reported:
// throughput, p99 time-to-start (submit→placed), and the fraction of
// placements served hits-first.
func BenchmarkDispatchHitsFirst(b *testing.B) {
	cluster, err := NewCluster(SimConfig(), 2, WithQueueDepth(256),
		WithPlacementRegret(1))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()

	type mix struct {
		model Model
		topo  *Topology
	}
	names := []string{"alexnet", "resnet18", "mobilenet", "googlenet", "resnet34", "gpt2-small"}
	topos := []*Topology{Mesh(2, 2), Mesh(2, 3), Mesh(3, 3), Mesh(3, 4), Chain(4), Mesh(2, 3)}
	mixes := make([]mix, len(names))
	for i, n := range names {
		m, err := ModelByName(n)
		if err != nil {
			b.Fatal(err)
		}
		mixes[i] = mix{m, topos[i]}
	}

	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	var handles []*Handle
	waits := make([]time.Duration, 0, b.N)
	drain := func(h *Handle) {
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		waits = append(waits, h.QueueWait())
	}
	for i := 0; i < b.N; i++ {
		mx := mixes[i%len(mixes)]
		job := Job{
			Tenant:   fmt.Sprintf("tenant-%02d", i%16),
			Model:    mx.model,
			Topology: mx.topo,
		}
		for {
			h, err := cluster.Submit(ctx, job)
			if err == nil {
				handles = append(handles, h)
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			if len(handles) > 0 {
				drain(handles[0])
				handles = handles[1:]
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, h := range handles {
		drain(h)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	if len(waits) > 0 {
		p99 := waits[(len(waits)*99)/100]
		b.ReportMetric(float64(p99.Microseconds()), "p99start_us")
	}
	if s := cluster.Stats(); s.Completed > 0 {
		b.ReportMetric(float64(s.HitsFirst)/float64(s.Completed)*100, "%hitsfirst")
	}
}

// Ablation and extension benches: the design-space probes beyond the
// paper's own figures (see DESIGN.md).

// BenchmarkAblLastV measures the last_v assist's probe reduction.
func BenchmarkAblLastV(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblLastV()
		if err != nil {
			b.Fatal(err)
		}
		imp = r.Improvement()
	}
	b.ReportMetric(imp, "x_probes")
}

// BenchmarkAblRandomAccess measures the §7 random-access caveat: the
// stall ratio of fragmented range translation over page translation.
func BenchmarkAblRandomAccess(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblRandom()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.RangeStallPerAccess / r.PageStallPerAccess
	}
	b.ReportMetric(ratio, "range/page")
}

// BenchmarkExtHeterogeneousCores measures the kind-aware mapping speedup
// on a hybrid SA/VU chip (§7).
func BenchmarkExtHeterogeneousCores(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExtHetero()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup()
	}
	b.ReportMetric(speedup, "x_aware")
}

// BenchmarkExtTimeShare measures the fine-grained temporal sharing
// overhead (§7).
func BenchmarkExtTimeShare(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExtTimeShare()
		if err != nil {
			b.Fatal(err)
		}
		pct = r.Points[0].OverheadPct
	}
	b.ReportMetric(pct, "%finest")
}

// BenchmarkExtDecode measures KV-cache decode throughput (§7).
func BenchmarkExtDecode(b *testing.B) {
	var tps float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExtDecode()
		if err != nil {
			b.Fatal(err)
		}
		tps = r.TokensPerSec
	}
	b.ReportMetric(tps, "tok/s")
}

// BenchmarkFleetThroughput drives a 4-shard fleet through the
// session-affine router with the reuse workload mix: reusable jobs
// consistent-hash to their owner shard's warm pool, one-shots balance by
// pressure. Reports aggregate jobs/s, the fleet-wide warm-hit rate, and
// how many submissions the balancer moved.
func BenchmarkFleetThroughput(b *testing.B) {
	f, err := NewFleet(SimConfig(), 4, 1, WithQueueDepth(256),
		WithSessionReuse(), WithSessionIdleTTL(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()

	type mix struct {
		model Model
		topo  *Topology
	}
	names := []string{"alexnet", "resnet18", "mobilenet", "googlenet", "resnet34", "gpt2-small"}
	topos := []*Topology{Mesh(2, 2), Mesh(2, 3), Mesh(3, 3), Mesh(3, 4), Chain(4), Mesh(2, 3)}
	mixes := make([]mix, len(names))
	for i, n := range names {
		m, err := ModelByName(n)
		if err != nil {
			b.Fatal(err)
		}
		mixes[i] = mix{m, topos[i]}
	}

	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	var handles []*FleetHandle
	for i := 0; i < b.N; i++ {
		mx := mixes[i%len(mixes)]
		job := Job{
			Tenant:   fmt.Sprintf("tenant-%02d", i%8),
			Model:    mx.model,
			Topology: mx.topo,
			Reusable: i%3 != 0, // two thirds affine, one third load-balanced
		}
		for {
			h, err := f.Submit(ctx, job)
			if err == nil {
				handles = append(handles, h)
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				b.Fatal(err)
			}
			if len(handles) > 0 {
				if _, werr := handles[0].Wait(ctx); werr != nil {
					b.Fatal(werr)
				}
				handles = handles[1:]
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds()

	var warm, cold, batched uint64
	for i := 0; i < f.NumShards(); i++ {
		ss := f.Shard(i).SessionStats()
		warm += ss.WarmHits
		cold += ss.ColdCreates
		batched += ss.Batched
	}
	fs := f.Stats()
	b.ReportMetric(float64(b.N)/elapsed, "jobs/s")
	if warm+cold+batched > 0 {
		b.ReportMetric(float64(warm+batched)/float64(warm+cold+batched)*100, "%warm")
	}
	b.ReportMetric(float64(fs.Steals+fs.Rerouted), "moved")
}

// benchTimingBackend drives warm session traffic — the fast backend's
// design center — through one timing backend. Simulation dominates the
// warm path here (SimConfig alexnet on a 2x2 mesh), so the analytic/fast
// ratio isolates the win of replaying memoized timing over re-walking
// the NoC/HBM calendars.
func benchTimingBackend(b *testing.B, backend TimingBackend) {
	opts := []ClusterOption{WithSessionReuse(), WithSessionIdleTTL(time.Hour)}
	if backend != nil {
		opts = append(opts, WithTimingBackend(backend))
	}
	cluster, err := NewCluster(SimConfig(), 1, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	job := Job{
		Tenant:   "warm",
		Model:    mustModel(b, "alexnet"),
		Topology: Mesh(2, 2),
		Reusable: true,
	}
	ctx := context.Background()
	submit := func() {
		h, err := cluster.Submit(ctx, job)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	submit() // cold create + first simulation: both backends pay it once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
	}
	b.StopTimer()
	if backend != nil {
		b.ReportMetric(backend.Stats().HitRate()*100, "%memo")
	}
}

// BenchmarkTimingMemo A/Bs the timing backends on identical warm
// serving traffic: the "fast" sub-benchmark's per-op time over
// "analytic"'s is the memoized-replay speedup the ISSUE's acceptance
// gate reads (CI asserts fast is at least 2x).
func BenchmarkTimingMemo(b *testing.B) {
	b.Run("analytic", func(b *testing.B) { benchTimingBackend(b, nil) })
	b.Run("fast", func(b *testing.B) { benchTimingBackend(b, FastTimingBackend(0)) })
}
