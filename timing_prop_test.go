package vnpu

import (
	"context"
	"fmt"
	"testing"
)

// timingMixJobs is a job mix with repeats (memo hits), distinct
// topologies and iteration counts (distinct memo keys), exercising the
// dimensions of the memo key from the serving layer.
func timingMixJobs(t *testing.T) []Job {
	t.Helper()
	return []Job{
		{Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2)},
		{Tenant: "b", Model: mustModel(t, "alexnet"), Topology: Chain(4)},
		{Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2)},
		{Tenant: "c", Model: mustModel(t, "resnet18"), Topology: Mesh(3, 4)},
		{Tenant: "a", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Iterations: 3},
		{Tenant: "b", Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2)},
	}
}

// sequentialReports runs the jobs one at a time on a fresh single-chip
// cluster and returns their reports, so each run's placement — and with
// it the memo's geometry key — is deterministic.
func sequentialReports(t *testing.T, jobs []Job, opts ...ClusterOption) ([]JobReport, TimingStats) {
	t.Helper()
	c, err := NewCluster(SimConfig(), 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reports := make([]JobReport, len(jobs))
	for i, job := range jobs {
		h, err := c.Submit(context.Background(), job)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if reports[i], err = h.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	return reports, c.TimingStats()
}

// TestFastBackendCycleIdenticalBothPaths is the ISSUE's headline
// property: with the fast (memoizing) timing backend the serving stack
// reports byte-identical timing outcomes to the analytic reference —
// every Report field, not just the makespan — on both execution paths.
// The session path must additionally serve repeats from the memo
// (hits > 0, proving replay identity rather than replay absence): warm
// jobs reuse the resident vNPU, whose fingerprint repeats. Dispatcher
// churn re-creates vNPUs, whose guest VA layout is per-vNPU, so its
// runs record without hitting — the identity property is what matters
// there, and every run must still be memoable (domains open, nothing
// bypassed).
func TestFastBackendCycleIdenticalBothPaths(t *testing.T) {
	check := func(t *testing.T, jobs []Job, wantHits bool, opts ...ClusterOption) {
		want, base := sequentialReports(t, jobs, opts...)
		if base.Backend != "analytic" || base.Hits != 0 {
			t.Fatalf("baseline timing stats = %+v, want pristine analytic", base)
		}
		got, fast := sequentialReports(t, jobs, append(opts, WithTimingBackend(FastTimingBackend(0)))...)
		if fast.Backend != "fast" {
			t.Fatalf("fast stats backend = %q", fast.Backend)
		}
		if fast.Bypassed != 0 || fast.Hits+fast.Misses != uint64(len(jobs)) {
			t.Fatalf("stats %+v: every run must flow through the memo as memoable", fast)
		}
		if wantHits && fast.Hits == 0 {
			t.Fatalf("no memo hits over warm repeats (stats %+v) — replay was not exercised", fast)
		}
		for i := range want {
			if got[i].Report != want[i].Report {
				t.Errorf("job %d (%s on %d cores, iters %d): fast report %+v, analytic %+v",
					i, jobs[i].Model.Name, jobs[i].Topology.NumNodes(), jobs[i].Iterations,
					got[i].Report, want[i].Report)
			}
		}
	}

	t.Run("dispatcher", func(t *testing.T) { check(t, timingMixJobs(t), false) })
	t.Run("session", func(t *testing.T) {
		jobs := timingMixJobs(t)
		for i := range jobs {
			jobs[i].Reusable = true
		}
		check(t, jobs, true, WithSessionReuse())
	})
}

// TestFastBackendOverlappedCycleIdentical extends the spatial-
// concurrency cycle-identity property to the fast backend: overlapped
// executions through the memo report exactly the solo analytic cycle
// count. The second session wave reuses the resident vNPUs, so its runs
// are guaranteed memo hits replayed while neighbors execute.
func TestFastBackendOverlappedCycleIdentical(t *testing.T) {
	const overlap = 3
	job := Job{Model: mustModel(t, "alexnet"), Topology: Mesh(2, 2), Iterations: 2, Reusable: true}
	want := soloCycles(t, job, WithSessionReuse())

	c, err := NewCluster(SimConfig(), 1, WithSessionReuse(), WithTimingBackend(FastTimingBackend(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.testExecHook = execBarrier(overlap)
	wave := func(round int) {
		handles := make([]*Handle, overlap)
		for i := range handles {
			j := job
			j.Tenant = fmt.Sprintf("t%d", i)
			h, err := c.Submit(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			rep, err := h.Wait(context.Background())
			if err != nil {
				t.Fatalf("round %d job %d: %v", round, i, err)
			}
			if rep.Cycles != want {
				t.Errorf("round %d job %d: %d cycles, want %d (solo analytic)", round, i, rep.Cycles, want)
			}
		}
	}
	wave(1)
	first := c.TimingStats()
	wave(2)
	second := c.TimingStats()
	if second.Hits <= first.Hits {
		t.Fatalf("warm wave on resident sessions added no memo hits: %+v -> %+v", first, second)
	}
	if s := c.Stats(); s.ExecOverlapAvg <= 1 {
		t.Fatalf("barrier held %d jobs but ExecOverlapAvg = %v — executions did not overlap", overlap, s.ExecOverlapAvg)
	}
}

// TestFastBackendGeometryInvalidation drives the memo through domain
// close/reopen on a bare System: a repeat on the same vNPU hits; a
// differently-shaped vNPU after destroy misses (its geometry
// fingerprint differs) and simulates fresh; re-creating the original
// geometry on the emptied chip hits again with the original result.
func TestFastBackendGeometryInvalidation(t *testing.T) {
	sys, err := NewSystem(SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	memo := FastTimingBackend(0)
	sys.SetTimingBackend(memo)
	m := mustModel(t, "alexnet")
	bytes, err := sys.ModelMemoryBytes(m, 4)
	if err != nil {
		t.Fatal(err)
	}

	boot := func(topology *Topology) (*VirtualNPU, *CompiledModel) {
		t.Helper()
		v, err := sys.Create(NewRequest(topology, WithMemory(bytes)))
		if err != nil {
			t.Fatal(err)
		}
		if err := v.OpenDomain(); err != nil {
			t.Fatal(err)
		}
		cm, err := sys.CompileFor(v, m)
		if err != nil {
			t.Fatal(err)
		}
		return v, cm
	}
	run := func(v *VirtualNPU, cm *CompiledModel) Report {
		t.Helper()
		v.ResetForRun()
		rep, err := sys.RunCompiled(context.Background(), v, cm, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	assertStats := func(step string, hits, misses uint64) {
		t.Helper()
		if s := memo.Stats(); s.Hits != hits || s.Misses != misses {
			t.Fatalf("%s: stats %+v, want hits=%d misses=%d", step, s, hits, misses)
		}
	}

	v1, cm1 := boot(Mesh(2, 2))
	mesh := run(v1, cm1)
	assertStats("first mesh run", 0, 1)
	if again := run(v1, cm1); again != mesh {
		t.Fatalf("same-domain repeat differs: %+v vs %+v", again, mesh)
	}
	assertStats("mesh repeat", 1, 1)
	if err := sys.Destroy(v1); err != nil {
		t.Fatal(err)
	}

	v2, cm2 := boot(Chain(4))
	chain := run(v2, cm2)
	assertStats("chain run after reshape", 1, 2)
	// The chain result must be the analytic truth, not a stale mesh replay.
	ref, err := NewSystem(SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	rv, rcm := func() (*VirtualNPU, *CompiledModel) {
		v, err := ref.Create(NewRequest(Chain(4), WithMemory(bytes)))
		if err != nil {
			t.Fatal(err)
		}
		if err := v.OpenDomain(); err != nil {
			t.Fatal(err)
		}
		cm, err := ref.CompileFor(v, m)
		if err != nil {
			t.Fatal(err)
		}
		return v, cm
	}()
	rv.ResetForRun()
	analytic, err := ref.RunCompiled(context.Background(), rv, rcm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chain != analytic {
		t.Fatalf("chain through memo %+v differs from analytic %+v", chain, analytic)
	}
	if err := sys.Destroy(v2); err != nil {
		t.Fatal(err)
	}

	// Original topology on the emptied chip: the guest VA layout is
	// per-vNPU, so the fresh vNPU's fingerprint differs and the run
	// simulates rather than replaying a stale entry — but re-creation
	// is cycle-identical, so the simulated outcome matches the original.
	v3, cm3 := boot(Mesh(2, 2))
	if again := run(v3, cm3); again != mesh {
		t.Fatalf("re-created mesh differs: %+v vs %+v", again, mesh)
	}
	assertStats("re-created mesh", 1, 3)
	// And a repeat on that same resident vNPU replays.
	if again := run(v3, cm3); again != mesh {
		t.Fatalf("resident repeat differs: %+v vs %+v", again, mesh)
	}
	assertStats("resident repeat", 2, 3)
}
