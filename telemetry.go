package vnpu

import (
	"net/http"
	"strconv"
	"time"

	"github.com/vnpu-sim/vnpu/internal/obs"
	"github.com/vnpu-sim/vnpu/internal/obs/slo"
)

// This file is the cluster's observability plane (see internal/obs):
// the metrics registry every counter family reports into, the lifecycle
// trace hooks shared by both serving paths, and the unified snapshot
// that replaces the former per-family ad-hoc field copies.

// TraceEvent is one recorded job lifecycle transition; see
// Cluster.TraceSnapshot and obs.Event for field semantics.
type TraceEvent = obs.Event

// Registry exposes the cluster's metrics registry: every serving
// counter family (ClusterStats, SchedStats, PlacementStats,
// SessionStats) plus the per-stage latency histograms, scrapeable as
// Prometheus text via obs.Registry.WritePrometheus or programmatically
// via collectors. Fleet shards share their registries with the fleet's
// (see Fleet.Registry).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// TraceSnapshot copies the retained lifecycle trace events out of the
// cluster's ring buffers, in record order. It returns nil when tracing
// is off (see WithTracing).
func (c *Cluster) TraceSnapshot() []TraceEvent {
	if c.rec == nil {
		return nil
	}
	return c.rec.Snapshot()
}

// Handler returns the cluster's live telemetry surface — /metrics
// (Prometheus text exposition), /trace and /trace.json (the lifecycle
// trace window, raw and as Chrome trace_event JSON; 404 unless
// WithTracing is on), /debug/slo (the error-budget report; 404 unless
// WithSLO declared objectives), and /debug/pprof/. Serve it with
// http.Server; every endpoint reads through snapshot paths and is safe
// under load (vnpuserve -listen).
func (c *Cluster) Handler() http.Handler {
	return obs.NewMux(c.reg, c.rec, sloEndpoints(c.slo)...)
}

// sloEndpoints hangs the tracker's report handler off the telemetry mux
// (empty when no objectives are declared).
func sloEndpoints(tr *slo.Tracker) []obs.Endpoint {
	if tr == nil {
		return nil
	}
	return []obs.Endpoint{{Path: "/debug/slo", Handler: tr}}
}

// priorityClassNames is the class-index → label-name table shared by the
// SLO tracker and the metric families (index 0 = PriorityBestEffort).
func priorityClassNames() []string {
	names := make([]string, NumPriorityClasses)
	for i := range names {
		names[i] = Priority(i + 1).String()
	}
	return names
}

// SLOReport computes the current error-budget report — one Status per
// (objective, tenant, class) series with window counts, budget
// remaining, fast/slow burn rates and the ok/warn/page state. The
// boolean is false when WithSLO declared no objectives.
func (c *Cluster) SLOReport() (slo.Report, bool) {
	if c.slo == nil {
		return slo.Report{}, false
	}
	return c.slo.Report(c.clk.Now()), true
}

// Attribution folds the retained trace window into a critical-path
// report: per-segment sojourn totals (queue-wait, map-park, batching,
// execution, ...) with per-shard and per-tenant margins. It covers the
// ring window only — check TraceDropped for truncation — and returns
// false when tracing is off.
func (c *Cluster) Attribution() (slo.Attribution, bool) {
	if c.rec == nil {
		return slo.Attribution{}, false
	}
	a := slo.NewAnalyzer()
	a.Feed(c.rec.Snapshot())
	return a.Report(), true
}

// TraceDropped reports how many trace events the ring buffers have
// overwritten — the truncation of TraceSnapshot's window.
func (c *Cluster) TraceDropped() uint64 {
	if c.rec == nil {
		return 0
	}
	return c.rec.Dropped()
}

// shardLabel is the cluster's shard label value (its index in a fleet,
// "0" standalone).
func (c *Cluster) shardLabel() obs.Label {
	return obs.Label{Key: "shard", Value: strconv.Itoa(c.shard)}
}

// stageHist is the StageHist provider handed to the scheduler core: one
// histogram per (stage, priority class), registered in the cluster's
// registry under the shared vnpu_stage_latency_seconds family so both
// serving paths and every shard report into mergeable series.
func (c *Cluster) stageHist(stage string, class int) *obs.Histogram {
	return c.reg.Histogram("vnpu_stage_latency_seconds",
		"Serving latency per lifecycle stage and priority class.",
		obs.Label{Key: "class", Value: Priority(class + 1).String()},
		c.shardLabel(),
		obs.Label{Key: "stage", Value: stage},
	)
}

// trace records one lifecycle event for a job. It is the single
// recording seam for both serving paths — the dispatcher calls it via
// SetObserver, the session path directly — feeding the trace recorder
// and the SLO tracker alike, and a no-op when both are off, so the hot
// paths pay two nil checks. The pointer spares the hot paths a Job copy
// per stage.
func (c *Cluster) trace(job *Job, stage obs.Stage, detail string, chip int) {
	if c.rec == nil && c.slo == nil {
		return
	}
	e := obs.Event{
		Job:    job.obsID,
		Stage:  stage,
		Detail: detail,
		Class:  job.Priority.class(),
		Shard:  c.shard,
		Chip:   chip,
		Tenant: job.tenant(),
		At:     c.clk.Now(),
	}
	if c.rec != nil {
		c.rec.Record(c.shard, e)
	}
	if c.slo != nil {
		c.slo.Observe(e)
	}
}

// ClusterSnapshot bundles every per-cluster counter family, captured in
// one pass: one dispatcher read and one session-counter merge feed all
// four families, so the former per-accessor ad-hoc copies (each taking
// the locks again) are gone.
type ClusterSnapshot struct {
	Cluster   ClusterStats
	Sched     SchedStats
	Placement PlacementStats
	Sessions  SessionStats
	Timing    TimingStats
}

// Snapshot captures every counter family at once. Stats, SchedStats,
// SessionStats and PlacementStats read through it.
func (c *Cluster) Snapshot() ClusterSnapshot {
	ds := c.disp.Stats()
	// The dispatcher already returns defensive slice copies. Its
	// worker-measured ChipBusy is deliberately not used: with several
	// execution slots per chip the workers' wall-clock sums can exceed
	// elapsed time. ChipBusy instead comes from the cluster's occupancy
	// integral, which both execution paths feed (releaseRegion).
	s := ClusterStats{
		Submitted:         ds.Submitted,
		RejectedQueueFull: ds.RejectedQueueFull,
		RejectedQuota:     ds.RejectedQuota,
		Completed:         ds.Completed,
		Failed:            ds.Failed,
		ChipJobs:          ds.ChipJobs,
		ChipBusy:          make([]time.Duration, len(c.systems)),
		HitsFirst:         ds.HitsFirst,
		MapParked:         ds.MapParked,
	}
	for i := range s.ChipBusy {
		if cores := c.chipCaps[i].cores; cores > 0 {
			s.ChipBusy[i] = time.Duration(c.coreNanos[i].Load() / int64(cores))
		}
	}
	var levels, samples uint64
	for lvl := 1; lvl <= overlapLevels; lvl++ {
		n := c.overlap[lvl-1].Load()
		samples += n
		levels += uint64(lvl) * n
	}
	if samples > 0 {
		s.ExecOverlapAvg = float64(levels) / float64(samples)
		var cum uint64
		for lvl := 1; lvl <= overlapLevels; lvl++ {
			cum += c.overlap[lvl-1].Load()
			if float64(cum) >= 0.99*float64(samples) {
				s.ChipConcurrencyP99 = float64(lvl)
				break
			}
		}
	}
	c.sessMu.Lock()
	s.Submitted += c.sessSubmitted
	s.Completed += c.sessCompleted
	s.Failed += c.sessFailed
	for i := range c.sessChipJobs {
		s.ChipJobs[i] += c.sessChipJobs[i]
	}
	c.sessMu.Unlock()
	snap := ClusterSnapshot{
		Cluster:   s,
		Sched:     SchedStats{Classes: ds.PerClass},
		Placement: c.engine.Stats(),
		Timing:    c.TimingStats(),
	}
	if c.pool != nil {
		snap.Sessions = c.pool.Stats()
	}
	return snap
}

// collect is the cluster registry's scalar collector: one Snapshot
// feeds every exported counter and gauge, labeled by shard (and chip,
// class, reason where applicable).
func (c *Cluster) collect(emit func(obs.Sample)) {
	snap := c.Snapshot()
	shard := c.shardLabel()
	counter := func(name, help string, v float64, labels ...obs.Label) {
		emit(obs.Sample{Name: name, Help: help, Labels: append(labels, shard), Value: v})
	}

	cs := snap.Cluster
	counter("vnpu_jobs_submitted_total", "Jobs admitted past quota and queue checks.", float64(cs.Submitted))
	counter("vnpu_jobs_completed_total", "Jobs finished successfully.", float64(cs.Completed))
	counter("vnpu_jobs_failed_total", "Jobs finished with an error.", float64(cs.Failed))
	counter("vnpu_jobs_rejected_total", "Submissions refused at admission.", float64(cs.RejectedQueueFull),
		obs.Label{Key: "reason", Value: "queue_full"})
	counter("vnpu_jobs_rejected_total", "Submissions refused at admission.", float64(cs.RejectedQuota),
		obs.Label{Key: "reason", Value: "quota"})
	counter("vnpu_jobs_hits_first_total", "Dispatcher jobs started on a cached placement within the regret bound.", float64(cs.HitsFirst))
	counter("vnpu_jobs_map_parked_total", "Dispatcher jobs parked on an async mapping.", float64(cs.MapParked))
	for i := range cs.ChipJobs {
		chip := obs.Label{Key: "chip", Value: strconv.Itoa(i)}
		counter("vnpu_chip_jobs_total", "Jobs executed per chip.", float64(cs.ChipJobs[i]), chip)
		counter("vnpu_chip_busy_seconds_total", "Per-chip occupancy: execution time weighted by the core fraction held.", cs.ChipBusy[i].Seconds(), chip)
		counter("vnpu_chip_concurrent_jobs", "Jobs currently executing on the chip.", float64(c.curJobs[i].Load()), chip)
	}

	for i, cl := range snap.Sched.Classes {
		class := obs.Label{Key: "class", Value: Priority(i + 1).String()}
		counter("vnpu_class_submitted_total", "Jobs admitted per priority class (both serving paths).", float64(cl.Submitted), class)
		counter("vnpu_class_completed_total", "Jobs completed per priority class.", float64(cl.Completed), class)
		counter("vnpu_class_failed_total", "Jobs failed per priority class.", float64(cl.Failed), class)
		counter("vnpu_class_deadline_misses_total", "Jobs whose deadline passed before placement, per class.", float64(cl.DeadlineMisses), class)
		counter("vnpu_class_displaced_total", "Queued jobs displaced by higher-class arrivals, per class.", float64(cl.Displaced), class)
		counter("vnpu_class_backfilled_total", "Jobs placed out of strict order into capacity the head could not use, per class.", float64(cl.Backfilled), class)
		counter("vnpu_class_promotions_total", "Aging promotions out of the class.", float64(cl.Promotions), class)
	}

	ps := snap.Placement
	counter("vnpu_placement_decisions_total", "Placement decisions taken.", float64(ps.Placements))
	counter("vnpu_placement_cache_hits_total", "Mapping resolutions served from the placement cache.", float64(ps.CacheHits))
	counter("vnpu_placement_cache_misses_total", "Mapping resolutions that ran the topology mapper.", float64(ps.CacheMisses))
	counter("vnpu_placement_cache_evictions_total", "Placement cache entries evicted.", float64(ps.CacheEvictions))
	counter("vnpu_placement_cache_entries", "Placement cache entries resident.", float64(ps.CacheSize))
	counter("vnpu_placement_decision_seconds_total", "Cumulative time spent in placement decisions.", ps.PlaceTime.Seconds())
	counter("vnpu_placement_map_seconds_total", "Cumulative time spent inside the topology mapper.", ps.MapTime.Seconds())
	counter("vnpu_placement_async_maps_total", "Mapping computations scheduled on the async mapper workers.", float64(ps.AsyncMaps))
	counter("vnpu_placement_prewarm_runs_total", "Speculative mapper computations started by prewarm.", float64(ps.PrewarmRuns))
	counter("vnpu_placement_prewarm_hits_total", "Cache hits served from prewarmed entries.", float64(ps.PrewarmHits))
	counter("vnpu_placement_negative_hits_total", "Mapping failures served from the negative-result memo.", float64(ps.NegHits))
	counter("vnpu_placement_map_workers", "Mapper worker-pool size (adaptive between 1 and the configured bound).", float64(ps.MapWorkers))
	counter("vnpu_placement_map_grow_vetoed_total", "Mapper-pool growth declined because chip execution slots were saturated.", float64(ps.MapGrowVetoed))

	ts := snap.Timing
	backend := obs.Label{Key: "backend", Value: ts.Backend}
	counter("vnpu_timing_memo_hits_total", "Job executions replayed from the timing memo instead of re-simulating.", float64(ts.Hits), backend)
	counter("vnpu_timing_memo_misses_total", "Memoable job executions that ran the simulator and stored their timing.", float64(ts.Misses), backend)
	counter("vnpu_timing_memo_evictions_total", "Timing memo entries evicted to honor the capacity bound.", float64(ts.Evictions), backend)

	ss := snap.Sessions
	counter("vnpu_session_warm_hits_total", "Jobs served by an idle resident session.", float64(ss.WarmHits))
	counter("vnpu_session_cold_creates_total", "Jobs that created a resident session.", float64(ss.ColdCreates))
	counter("vnpu_session_batched_total", "Jobs co-scheduled onto a busy session's micro-queue.", float64(ss.Batched))
	counter("vnpu_session_evictions_total", "Idle sessions destroyed, by cause.", float64(ss.EvictedTTL), obs.Label{Key: "cause", Value: "ttl"})
	counter("vnpu_session_evictions_total", "Idle sessions destroyed, by cause.", float64(ss.EvictedLRU), obs.Label{Key: "cause", Value: "lru"})
	counter("vnpu_session_evictions_total", "Idle sessions destroyed, by cause.", float64(ss.EvictedPressure), obs.Label{Key: "cause", Value: "pressure"})
	counter("vnpu_session_idle", "Idle resident sessions.", float64(ss.IdleSessions))
	counter("vnpu_session_busy", "Busy resident sessions.", float64(ss.BusySessions))
	counter("vnpu_session_idle_cores", "Chip cores held by idle sessions (warm, reclaimable).", float64(ss.IdleCores))

	if c.rec != nil {
		counter("vnpu_trace_dropped_total", "Lifecycle trace events overwritten in the ring buffers.", float64(c.TraceDropped()))
	}
}

// initStageHists fetches the session path's handles on the same stage
// histograms the dispatcher fills (get-or-create via stageHist, so the
// pointers are shared).
func (c *Cluster) initStageHists() {
	for class := 0; class < NumPriorityClasses; class++ {
		c.sessExec[class] = c.stageHist("exec", class)
		c.sessE2E[class] = c.stageHist("e2e", class)
	}
}

// Registry exposes the fleet's metrics registry: the fleet's own
// counters (steals, re-homes, membership transitions) plus every
// shard's registry as a nested source, so one scrape covers the whole
// fleet with shard-labeled series.
func (f *Fleet) Registry() *obs.Registry { return f.reg }

// TraceSnapshot copies the retained lifecycle trace events of every
// shard, in record order; nil when tracing is off.
func (f *Fleet) TraceSnapshot() []TraceEvent {
	if f.rec == nil {
		return nil
	}
	return f.rec.Snapshot()
}

// TraceDropped reports how many trace events the fleet's ring buffers
// have overwritten; see Cluster.TraceDropped.
func (f *Fleet) TraceDropped() uint64 {
	if f.rec == nil {
		return 0
	}
	return f.rec.Dropped()
}

// Handler returns the fleet's live telemetry surface; see
// Cluster.Handler. The /metrics scrape covers every shard (shard-
// labeled series), the trace endpoints cover the fleet-wide recorder,
// and /debug/slo reports the fleet-wide error budgets.
func (f *Fleet) Handler() http.Handler {
	return obs.NewMux(f.reg, f.rec, sloEndpoints(f.slo)...)
}

// SLOReport computes the fleet-wide error-budget report; see
// Cluster.SLOReport. Every shard scores into one shared tracker, so the
// budgets cover jobs wherever they ran (including forwarded ones).
func (f *Fleet) SLOReport() (slo.Report, bool) {
	if f.slo == nil {
		return slo.Report{}, false
	}
	return f.slo.Report(f.clk.Now()), true
}

// Attribution folds the fleet's retained trace window into a critical-
// path report; see Cluster.Attribution. Forward hops (steals) appear as
// the "forward" segment attributed to the victim shard.
func (f *Fleet) Attribution() (slo.Attribution, bool) {
	if f.rec == nil {
		return slo.Attribution{}, false
	}
	a := slo.NewAnalyzer()
	a.Feed(f.rec.Snapshot())
	return a.Report(), true
}

// collect emits the fleet's own counters (shard counters come from the
// nested shard registries).
func (f *Fleet) collect(emit func(obs.Sample)) {
	f.mu.Lock()
	steals, rehomed, rerouted, drains, rejoins := f.steals, f.rehomed, f.rerouted, f.drains, f.rejoins
	f.mu.Unlock()
	emit(obs.Sample{Name: "vnpu_fleet_steals_total", Help: "Queued jobs moved off overloaded shards by the balancer.", Value: float64(steals)})
	emit(obs.Sample{Name: "vnpu_fleet_rehomed_total", Help: "Queued jobs moved off a draining shard.", Value: float64(rehomed)})
	emit(obs.Sample{Name: "vnpu_fleet_rerouted_total", Help: "Session-affine submissions diverted to a least-pressure shard.", Value: float64(rerouted)})
	emit(obs.Sample{Name: "vnpu_fleet_drains_total", Help: "Shard drain transitions.", Value: float64(drains)})
	emit(obs.Sample{Name: "vnpu_fleet_rejoins_total", Help: "Shard rejoin transitions.", Value: float64(rejoins)})
	emit(obs.Sample{Name: "vnpu_fleet_active_shards", Help: "Shards currently taking traffic.", Value: float64(f.router.ActiveCount())})
}
