package vnpu

// Per-chip execution regions: the concurrency control that replaced the
// chip-wide execution lock. An executing job claims the core set its
// vNPU holds; claims that intersect serialize, disjoint ones run
// overlapped. Because the hypervisor only hands out disjoint core sets,
// the serving paths normally acquire without waiting — the lock exists
// so a violated isolation invariant degrades to serialization instead of
// corrupting a neighbor's cycle timeline. vNPUs without a timing domain
// reset chip-global state per run and therefore claim every core.

import (
	"sync"
	"time"

	"github.com/vnpu-sim/vnpu/internal/topo"
)

// regionClaim is one executing job's hold on a set of cores.
type regionClaim struct {
	nodes map[topo.NodeID]struct{}
}

// chipRegions admits executions on one chip: disjoint core sets
// concurrently, intersecting ones in FIFO-less arrival order (waiters
// re-check on every release; fairness does not matter because conflicts
// only arise when isolation is already broken or a domain-less vNPU
// demands the whole chip).
type chipRegions struct {
	mu     sync.Mutex
	cond   *sync.Cond
	claims []*regionClaim
}

func newChipRegions() *chipRegions {
	r := &chipRegions{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// acquire blocks until no active claim intersects nodes, then claims
// them.
func (r *chipRegions) acquire(nodes []topo.NodeID) *regionClaim {
	c := &regionClaim{nodes: make(map[topo.NodeID]struct{}, len(nodes))}
	for _, n := range nodes {
		c.nodes[n] = struct{}{}
	}
	r.mu.Lock()
	for r.conflicts(c) {
		r.cond.Wait()
	}
	r.claims = append(r.claims, c)
	r.mu.Unlock()
	return c
}

func (r *chipRegions) conflicts(c *regionClaim) bool {
	for _, held := range r.claims {
		small, large := c.nodes, held.nodes
		if len(large) < len(small) {
			small, large = large, small
		}
		for n := range small {
			if _, ok := large[n]; ok {
				return true
			}
		}
	}
	return false
}

func (r *chipRegions) release(c *regionClaim) {
	r.mu.Lock()
	for i, held := range r.claims {
		if held == c {
			last := len(r.claims) - 1
			r.claims[i] = r.claims[last]
			r.claims[last] = nil
			r.claims = r.claims[:last]
			break
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// overlapLevels bounds the concurrency-level sample histogram; deeper
// overlap collapses into the top bucket.
const overlapLevels = 64

// acquireRegion claims the vNPU's cores on the chip for execution,
// waiting out any intersecting claim, and samples the resulting
// concurrency level. Both execution paths bracket every run with
// acquireRegion/releaseRegion.
func (c *Cluster) acquireRegion(chip int, v *VirtualNPU) *regionClaim {
	nodes := v.Nodes()
	if !v.HasDomain() {
		// Without a private timing domain the run resets chip-global
		// calendars, so it must execute exclusively.
		nodes = c.chipNodes[chip]
	}
	waitStart := c.clk.Now()
	claim := c.regions[chip].acquire(nodes)
	c.regionWait.Observe(c.clk.Since(waitStart))
	level := c.curJobs[chip].Add(1)
	if level > overlapLevels {
		level = overlapLevels
	}
	c.overlap[level-1].Add(1)
	return claim
}

// releaseRegion returns the claim and books the execution into the
// chip's occupancy integral: busy time weighted by the cores held.
func (c *Cluster) releaseRegion(chip int, claim *regionClaim, cores int, busy time.Duration) {
	c.curJobs[chip].Add(-1)
	if busy > 0 {
		c.coreNanos[chip].Add(busy.Nanoseconds() * int64(cores))
	}
	c.regions[chip].release(claim)
}
