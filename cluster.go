package vnpu

import (
	"context"
	"fmt"
	"time"

	"github.com/vnpu-sim/vnpu/internal/core"
	"github.com/vnpu-sim/vnpu/internal/sched"
)

// Cluster is the serving front-end over multiple NPU chips: jobs are
// submitted asynchronously, pass admission control (a bounded FIFO queue
// plus per-tenant in-flight quotas), and are placed on the chip whose free
// region matches the requested topology best (minimum topology edit
// distance). One worker goroutine per chip executes placed jobs in order;
// when no chip can host a job, dispatch parks until a finishing job frees
// capacity.
//
// A Cluster of size 1 is the serving wrapper around a single System; the
// System API remains available as the synchronous single-chip building
// block.
//
// All methods are safe for concurrent use.
type Cluster struct {
	systems []*System
	disp    *sched.Dispatcher[Job, *VirtualNPU, JobReport]

	// testExecHook, when set before any Submit, runs at the start of every
	// job execution — a test seam for holding jobs on their chips.
	testExecHook func(chip int)
}

// ClusterOption tunes cluster admission control.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	queueDepth  int
	tenantQuota int
}

// WithQueueDepth bounds the admission queue (default
// DefaultQueueDepth). Submissions beyond it fail with ErrQueueFull.
func WithQueueDepth(n int) ClusterOption {
	return func(c *clusterConfig) { c.queueDepth = n }
}

// WithTenantQuota caps each tenant's in-flight jobs, queued plus running
// (default unlimited). Submissions beyond it fail with ErrQuotaExceeded.
// A canceled job's slot is reclaimed when the job drains from the FIFO
// queue, not at cancellation time.
func WithTenantQuota(n int) ClusterOption {
	return func(c *clusterConfig) { c.tenantQuota = n }
}

// DefaultQueueDepth is the admission-queue bound when none is given.
const DefaultQueueDepth = sched.DefaultQueueDepth

// NewCluster boots the given number of identical NPU chips under one
// serving front-end. Close the cluster to stop its goroutines.
func NewCluster(cfg Config, chips int, opts ...ClusterOption) (*Cluster, error) {
	if chips < 1 {
		return nil, fmt.Errorf("vnpu: cluster needs at least one chip, got %d", chips)
	}
	var cc clusterConfig
	for _, opt := range opts {
		opt(&cc)
	}
	c := &Cluster{systems: make([]*System, chips)}
	for i := range c.systems {
		sys, err := NewSystem(cfg)
		if err != nil {
			return nil, fmt.Errorf("vnpu: booting chip %d: %w", i, err)
		}
		c.systems[i] = sys
	}
	disp, err := sched.New[Job, *VirtualNPU, JobReport](
		(*clusterExec)(c),
		sched.Config{Chips: chips, QueueDepth: cc.queueDepth, TenantQuota: cc.tenantQuota},
	)
	if err != nil {
		return nil, err
	}
	c.disp = disp
	return c, nil
}

// Submit validates the job, applies admission control and enqueues it,
// returning immediately. Admission errors wrap ErrQueueFull,
// ErrQuotaExceeded or ErrDestroyed (closed cluster); a malformed job (nil
// topology, invalid model) fails with a plain validation error. The
// context governs the job's whole lifetime: canceling it abandons the job
// whether queued or awaiting capacity.
func (c *Cluster) Submit(ctx context.Context, job Job) (*Handle, error) {
	if job.Topology == nil || job.Topology.NumNodes() == 0 {
		return nil, fmt.Errorf("vnpu: job needs a topology")
	}
	if err := job.Model.Validate(); err != nil {
		return nil, fmt.Errorf("vnpu: job model: %w", err)
	}
	// A topology larger than a whole chip can never be placed; reject it
	// here rather than letting it head-of-line-block the FIFO dispatcher
	// until the cluster drains.
	if n, cores := job.Topology.NumNodes(), c.systems[0].Config().Cores(); n > cores {
		return nil, fmt.Errorf("vnpu: job topology needs %d cores, chips have %d: %w",
			n, cores, ErrTopologyUnsatisfiable)
	}
	// Size the job's memory from its model once, up front on the caller's
	// goroutine: chips are identical, so the footprint is chip-invariant,
	// and Place must not re-compile the workload per placement attempt.
	req := job.request()
	if req.MemoryBytes == 0 {
		bytes, err := c.systems[0].ModelMemoryBytes(job.Model, job.Topology.NumNodes())
		if err != nil {
			return nil, fmt.Errorf("vnpu: sizing job memory: %w", err)
		}
		req.MemoryBytes = bytes
		opts := job.Options
		job.Options = append(opts[:len(opts):len(opts)], WithMemory(bytes))
	}
	// Like the core-count guard: memory beyond a whole chip's HBM pool can
	// never be allocated, so fail at Submit instead of parking dispatch.
	if cap := c.systems[0].hv.MemCapacity(); req.MemoryBytes > cap {
		return nil, fmt.Errorf("vnpu: job needs %d bytes of memory, chips have %d: %w",
			req.MemoryBytes, cap, ErrMemoryExceeded)
	}
	h, err := c.disp.Submit(ctx, job.tenant(), job)
	if err != nil {
		return nil, err
	}
	return &Handle{h: h}, nil
}

// Chips reports the number of chips in the cluster.
func (c *Cluster) Chips() int { return len(c.systems) }

// Chip returns the i-th chip's System for direct (synchronous) use or
// inspection. Mixing direct Create/RunModel calls with an active job
// stream on the same chip is not supported.
func (c *Cluster) Chip(i int) *System { return c.systems[i] }

// Utilization reports the fraction of allocated cores per chip.
func (c *Cluster) Utilization() []float64 {
	out := make([]float64, len(c.systems))
	for i, sys := range c.systems {
		out[i] = sys.Utilization()
	}
	return out
}

// Close stops intake, waits for every admitted job to finish, and shuts
// down the dispatcher and chip workers. Submissions after Close fail with
// ErrDestroyed.
func (c *Cluster) Close() error { return c.disp.Close() }

// ClusterStats is a snapshot of serving counters.
type ClusterStats struct {
	// Submitted counts jobs admitted past quota and queue checks.
	Submitted uint64
	// RejectedQueueFull counts submissions refused with ErrQueueFull.
	RejectedQueueFull uint64
	// RejectedQuota counts submissions refused with ErrQuotaExceeded.
	RejectedQuota uint64
	// Completed counts jobs that finished successfully.
	Completed uint64
	// Failed counts jobs that finished with an error (including
	// cancellations).
	Failed uint64
	// ChipJobs counts executed jobs per chip.
	ChipJobs []int
	// ChipBusy is the cumulative wall-clock execution time per chip.
	ChipBusy []time.Duration
}

// Stats returns a snapshot of the cluster's serving counters.
func (c *Cluster) Stats() ClusterStats {
	// Structural conversion: ClusterStats mirrors sched.Stats field for
	// field, and the dispatcher already returns defensive slice copies.
	return ClusterStats(c.disp.Stats())
}

// clusterExec adapts the Cluster to the dispatcher's Executor interface.
// Score and Place run on the dispatcher goroutine, Execute and Release on
// the owning chip's worker — the hypervisor's own lock covers that
// concurrency, and execution itself is serialized per chip by design.
type clusterExec Cluster

// Score is a dry-run topology mapping over the chip's current free cores:
// the dispatcher sends each job to the chip that can realize its topology
// with the smallest edit distance. A load term — the chip's resident core
// allocation blended with its worker backlog — breaks exact cost ties, so
// equally-good placements spread across chips instead of piling onto the
// first one; it can never override a cost difference, however small.
func (e *clusterExec) Score(chip int, job Job) (sched.Score, error) {
	sys := e.systems[chip]
	req := job.request()
	res, err := core.MapTopology(sys.dev.Graph(), sys.hv.FreeCores(), req.Topology, req.Strategy, req.MapOptions)
	if err != nil {
		return sched.Score{}, err
	}
	backlog := float64(e.disp.Backlog(chip))
	return sched.Score{
		Cost: res.Cost,
		Load: (sys.Utilization() + backlog/(backlog+1)) / 2,
	}, nil
}

// Place creates the job's vNPU on the chosen chip. The request's memory
// was already sized at Submit, so this stays cheap on the dispatch path.
func (e *clusterExec) Place(chip int, job Job) (*VirtualNPU, error) {
	return e.systems[chip].Create(job.request())
}

// Execute runs the job on its placed vNPU. The chip's transient timing
// state is reset first: each time-multiplexed job gets a fresh cycle
// timeline (execution on a chip is serialized by its worker).
func (e *clusterExec) Execute(ctx context.Context, chip int, v *VirtualNPU, job Job) (JobReport, error) {
	if e.testExecHook != nil {
		e.testExecHook(chip)
	}
	if err := ctx.Err(); err != nil {
		return JobReport{}, err
	}
	sys := e.systems[chip]
	sys.dev.ResetTiming()
	rep, err := sys.RunModel(v, job.Model, job.Iterations)
	if err != nil {
		return JobReport{}, err
	}
	return JobReport{
		Report:  rep,
		Chip:    chip,
		Tenant:  job.tenant(),
		Model:   job.Model.Name,
		MapCost: v.MapCost(),
	}, nil
}

// Release destroys the job's vNPU, returning its cores and memory.
func (e *clusterExec) Release(chip int, v *VirtualNPU) error {
	return e.systems[chip].Destroy(v)
}
