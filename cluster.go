package vnpu

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vnpu-sim/vnpu/internal/isa"
	"github.com/vnpu-sim/vnpu/internal/metrics"
	"github.com/vnpu-sim/vnpu/internal/obs"
	"github.com/vnpu-sim/vnpu/internal/obs/slo"
	"github.com/vnpu-sim/vnpu/internal/place"
	"github.com/vnpu-sim/vnpu/internal/sched"
	"github.com/vnpu-sim/vnpu/internal/session"
	"github.com/vnpu-sim/vnpu/internal/sim"
	"github.com/vnpu-sim/vnpu/internal/topo"
)

// Cluster is the serving front-end over multiple NPU chips: jobs are
// submitted asynchronously, pass admission control (a bounded FIFO queue
// plus per-tenant in-flight quotas), and are placed by the placement
// engine — the chip whose free region matches the requested topology best
// (minimum topology edit distance), with ties going to the cheapest chip
// class and then the least-loaded chip. Each chip runs a small pool of
// execution slots (WithChipSlots): spatially disjoint vNPUs execute
// concurrently, each in its own timing domain, while overlapping regions
// serialize on a per-chip region lock. When no chip can host a job,
// dispatch parks until a finishing job frees capacity.
//
// Placement decisions are cached: scored topology mappings are memoized
// per (chip class, free-set signature, requested topology, strategy) and
// the free-set signatures are maintained incrementally on create/destroy
// deltas, so steady-state dispatch rarely runs the topology mapper at all
// (PlacementStats reports the hit rate). Chips may be heterogeneous — see
// WithChipProfiles.
//
// A Cluster of size 1 is the serving wrapper around a single System; the
// System API remains available as the synchronous single-chip building
// block.
//
// All methods are safe for concurrent use.
type Cluster struct {
	systems  []*System
	engine   *place.Engine
	disp     *sched.Dispatcher[Job, *VirtualNPU, JobReport]
	maxCores int
	// clk supplies time to every serving-path timestamp and timer —
	// deadline checks, queue-wait accounting, the session TTL janitor.
	// Wall clock unless WithClock injected another (see Clock).
	clk sim.Clock
	// chipCaps holds each chip's admission-relevant limits (core count
	// and the profile's memory bound). Submit must reject a job no single
	// chip jointly satisfies — checking cluster-wide maxima independently
	// would admit jobs that then head-of-line-block the FIFO dispatcher.
	chipCaps []chipCap

	// regions admits concurrent executions per chip: each executing job
	// claims its vNPU's core set and waits only on claims that intersect
	// it. The hypervisor hands out disjoint core sets, so on the serving
	// paths the wait is normally zero — the lock is the safety net that
	// turns an isolation bug into serialization instead of timing
	// corruption. A vNPU without a timing domain claims the whole chip
	// (its reset is chip-global). chipNodes caches each chip's full node
	// list for those exclusive claims.
	regions   []*chipRegions
	chipNodes [][]topo.NodeID

	// coreNanos is the per-chip occupancy integral: each finished
	// execution adds its duration times the cores it held, so
	// Snapshot's ChipBusy (coreNanos / chip cores) stays a true
	// occupancy (<= wall clock) even when executions overlap.
	coreNanos []atomic.Int64
	// curJobs counts executions in flight per chip (the
	// vnpu_chip_concurrent_jobs gauge); overlap histograms the
	// concurrency level sampled at each execution start, feeding
	// ClusterStats.ExecOverlapAvg and ChipConcurrencyP99.
	curJobs []atomic.Int64
	overlap [overlapLevels]atomic.Uint64
	// regionWait observes how long each execution waited to claim its
	// region (vnpu_exec_region_wait_seconds).
	regionWait *obs.Histogram

	// pool holds resident session vNPUs when WithSessionReuse is on (nil
	// otherwise); see session.go for the serving path built on it.
	pool        *session.Pool[*sessRes, *sessTask]
	queueDepth  int
	tenantQuota int

	// capFreed is the session path's analogue of the dispatcher's freed
	// signal: a one-slot edge poked whenever capacity returns anywhere
	// (dispatcher release, session idle/evict/destroy), so session jobs
	// parked on ErrNoCapacity rescore instead of spinning or failing.
	capFreed chan struct{}

	// sessMu guards the session path's admission state and serving
	// counters (tenant quota slots live in the dispatcher's counter via
	// ReserveSlot, so both paths check it atomically). sessClosed also
	// serves as the cluster's Close-once flag.
	sessMu        sync.Mutex
	sessClosed    bool
	sessInflight  int
	sessWG        sync.WaitGroup
	sessSubmitted uint64
	sessCompleted uint64
	sessFailed    uint64
	sessChipJobs  []int

	// defaultPriority is the class PriorityDefault resolves to;
	// priorityCaps clamps specific tenants' classes (see
	// WithTenantPriorityCap). Both are read-only after NewCluster.
	defaultPriority Priority
	priorityCaps    map[string]Priority

	// seenMu guards seen, the auto-promotion memory: session keys
	// submitted more than once route through the pool even without
	// Job.Reusable.
	seenMu sync.Mutex
	seen   map[session.Key]uint8

	// regret is the hits-first tolerance: a job starts immediately on a
	// cached placement of cost <= regret instead of waiting for its full
	// rank (see WithPlacementRegret). Negative disables hits-first.
	regret float64
	// Regret auto-tuning (WithPlacementRegretTarget): when regretAuto is
	// set, RankHit reads the live bound from regretBound (float64 bits)
	// instead of the static regret, and maybeRetuneRegret periodically
	// adjusts it so the regretPct-quantile of the realized regret window
	// stays at or under regretGoal as fragmentation shifts.
	regretAuto  bool
	regretPct   float64
	regretGoal  float64
	regretBound atomic.Uint64
	regretObsN  atomic.Uint64

	// timing is the cluster-wide timing backend (nil = analytic default);
	// every chip's System routes RunCompiled through it. See timing.go.
	timing TimingBackend
	// chipSlots echoes the per-chip execution-slot bound; execSaturated
	// compares in-flight executions against it.
	chipSlots int

	// progMu guards progs, the compiled-program cache keyed by (model
	// fingerprint, core count, weight zone): admission sizing compiles a
	// workload once and keeps the sized program, and every later
	// execution at the same shape — cold session creates and one-shot
	// dispatcher jobs alike — reuses it, rebased to its vNPU's memory
	// base, instead of recompiling (see compileFor).
	progMu sync.Mutex
	progs  map[progKey]*progEntry

	// reg is the cluster's metrics registry (always on — counters and
	// stage histograms are cheap); rec is the lifecycle trace recorder,
	// nil unless WithTracing enabled it (or a fleet shared its recorder).
	// shard labels this cluster's metric series and trace events inside
	// a fleet (0 standalone). See telemetry.go.
	// slo is the error-budget tracker, nil unless WithSLO declared
	// objectives (or a fleet shared its tracker); it taps the same
	// lifecycle seam as rec but is independent of tracing.
	reg   *obs.Registry
	rec   *obs.Recorder
	slo   *slo.Tracker
	shard int
	// sessExec/sessE2E are the session path's handles on the per-class
	// stage histograms shared with the dispatcher (see initStageHists).
	sessExec [NumPriorityClasses]*obs.Histogram
	sessE2E  [NumPriorityClasses]*obs.Histogram

	// testExecHook, when set before any Submit, runs at the start of every
	// job execution — a test seam for holding jobs on their chips.
	testExecHook func(chip int)
}

// ChipProfile is the placement cost model of one chip class (compute
// throughput, NoC and memory bandwidth, memory pool). The engine prefers
// the cheapest chip that satisfies a job's topology; see WithChipProfiles.
type ChipProfile = place.ChipProfile

// ProfileFromConfig derives a chip's default cost model from its
// configuration. Override individual fields (e.g. CostPerCore) to encode
// operator-defined pricing.
func ProfileFromConfig(cfg Config) ChipProfile { return place.FromConfig(cfg) }

// ChipSpec describes one chip of a heterogeneous cluster: its hardware
// configuration plus an optional cost-model override (zero profile fields
// are derived from the configuration).
type ChipSpec struct {
	Config  Config
	Profile ChipProfile
}

// ClusterOption tunes cluster admission control and placement.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	queueDepth      int
	tenantQuota     int
	specs           []ChipSpec
	cacheSize       *int
	sessionReuse    bool
	sessionTTL      time.Duration
	sessionIdle     int
	sessionMicro    int
	defaultPriority Priority
	priorityCaps    map[string]Priority
	agingRounds     int
	mapperWorkers   int
	chipSlots       int
	regret          *float64
	regretTargetPct *float64
	regretTarget    float64
	timing          TimingBackend
	clock           sim.Clock
	negTTL          *time.Duration
	tracing         bool
	traceBuf        int
	// slos are the declared error-budget objectives (WithSLO); sloShared
	// is the fleet's shared tracker (withSharedSLO), which wins over slos
	// so every shard scores into one fleet-wide budget.
	slos      []SLO
	sloShared *slo.Tracker
	// recorder/shard are set by the fleet (withShardObs) so every shard
	// writes into one shared recorder under its own shard label.
	recorder *obs.Recorder
	shard    int
}

// WithQueueDepth bounds the admission queue (default
// DefaultQueueDepth). Submissions beyond it fail with ErrQueueFull.
func WithQueueDepth(n int) ClusterOption {
	return func(c *clusterConfig) { c.queueDepth = n }
}

// WithTenantQuota caps each tenant's in-flight jobs, queued plus running
// (default unlimited). Submissions beyond it fail with ErrQuotaExceeded.
// A canceled job's slot is reclaimed when the job drains from the FIFO
// queue, not at cancellation time.
func WithTenantQuota(n int) ClusterOption {
	return func(c *clusterConfig) { c.tenantQuota = n }
}

// WithChipProfiles boots a heterogeneous cluster: one chip per spec, in
// order, each with its own configuration and placement cost model. When
// this option is given, NewCluster's cfg and chips arguments only
// validate (chips is ignored; cfg is unused) — the specs define the
// cluster. Placement sends each job to the chip realizing its topology
// with the lowest edit distance, breaking ties toward the cheapest chip
// class, so small jobs gravitate to FPGA-scale chips while DCRA-scale
// chips stay free for topologies only they can host.
func WithChipProfiles(specs ...ChipSpec) ClusterOption {
	return func(c *clusterConfig) { c.specs = append([]ChipSpec(nil), specs...) }
}

// WithPlacementCacheSize bounds the placement engine's mapping cache
// (default place.DefaultCacheSize entries); n <= 0 disables caching, so
// every dispatch scores chips cold — useful to quantify the cache's win.
func WithPlacementCacheSize(n int) ClusterOption {
	return func(c *clusterConfig) { c.cacheSize = &n }
}

// DefaultQueueDepth is the admission-queue bound when none is given.
const DefaultQueueDepth = sched.DefaultQueueDepth

// DefaultChipSlots is the per-chip execution-slot count when
// WithChipSlots is not given.
const DefaultChipSlots = 4

// WithChipSlots sets how many dispatcher jobs may execute concurrently
// on one chip (default DefaultChipSlots). Spatially disjoint vNPUs run
// overlapped, each inside its own timing domain, so every job still
// observes the cycle timeline it would see alone on the chip; jobs whose
// core regions overlap — which the hypervisor's disjoint allocations
// make rare to impossible — serialize on the chip's region lock. n = 1
// restores the fully serialized execution model.
func WithChipSlots(n int) ClusterOption {
	return func(c *clusterConfig) { c.chipSlots = n }
}

// PlacementStats is a snapshot of the placement engine's counters: cache
// hits/misses/evictions and placement-decision latency.
type PlacementStats = metrics.PlacementStats

// NewCluster boots the given number of identical NPU chips under one
// serving front-end (or the heterogeneous chips of WithChipProfiles).
// Close the cluster to stop its goroutines.
func NewCluster(cfg Config, chips int, opts ...ClusterOption) (*Cluster, error) {
	var cc clusterConfig
	for _, opt := range opts {
		opt(&cc)
	}
	specs := cc.specs
	if len(specs) == 0 {
		if chips < 1 {
			return nil, fmt.Errorf("vnpu: cluster needs at least one chip, got %d", chips)
		}
		specs = make([]ChipSpec, chips)
		for i := range specs {
			specs[i] = ChipSpec{Config: cfg}
		}
	}
	if cc.clock == nil {
		cc.clock = sim.Wall()
	}
	c := &Cluster{
		clk:             cc.clock,
		systems:         make([]*System, len(specs)),
		regions:         make([]*chipRegions, len(specs)),
		chipNodes:       make([][]topo.NodeID, len(specs)),
		coreNanos:       make([]atomic.Int64, len(specs)),
		curJobs:         make([]atomic.Int64, len(specs)),
		progs:           make(map[progKey]*progEntry),
		sessChipJobs:    make([]int, len(specs)),
		seen:            make(map[session.Key]uint8),
		capFreed:        make(chan struct{}, 1),
		defaultPriority: cc.defaultPriority,
		priorityCaps:    cc.priorityCaps,
	}
	for i := range c.regions {
		c.regions[i] = newChipRegions()
	}
	if c.defaultPriority == PriorityDefault {
		c.defaultPriority = PriorityNormal
	}
	c.shard = cc.shard
	c.reg = obs.NewRegistry()
	c.regionWait = c.reg.Histogram("vnpu_exec_region_wait_seconds",
		"Time each execution waited to claim its core region on the chip.",
		c.shardLabel())
	switch {
	case cc.recorder != nil:
		c.rec = cc.recorder
	case cc.tracing:
		c.rec = obs.NewRecorder(1, cc.traceBuf)
	}
	switch {
	case cc.sloShared != nil:
		c.slo = cc.sloShared
	case len(cc.slos) > 0:
		objs := make([]slo.Objective, len(cc.slos))
		for i, s := range cc.slos {
			objs[i] = s.objective()
		}
		c.slo = slo.NewTracker(cc.clock.Now, priorityClassNames(), objs...)
	}
	engineChips := make([]place.Chip, len(specs))
	for i, spec := range specs {
		sys, err := NewSystem(spec.Config)
		if err != nil {
			return nil, fmt.Errorf("vnpu: booting chip %d: %w", i, err)
		}
		c.systems[i] = sys
		if cc.timing != nil {
			sys.SetTimingBackend(cc.timing)
		}
		c.chipNodes[i] = sys.dev.Graph().Nodes()
		if n := spec.Config.Cores(); n > c.maxCores {
			c.maxCores = n
		}
		// The derived memory filter must match what the hypervisor can
		// actually hand out (its buddy pool), not the raw HBM capacity; an
		// explicit spec override is honored but capped at the pool.
		derived := place.FromConfig(spec.Config)
		derived.MemoryBytes = sys.hv.MemCapacity()
		profile := spec.Profile.WithDefaults(derived)
		if profile.MemoryBytes > sys.hv.MemCapacity() {
			profile.MemoryBytes = sys.hv.MemCapacity()
		}
		c.chipCaps = append(c.chipCaps, chipCap{cores: spec.Config.Cores(), mem: profile.MemoryBytes})
		engineChips[i] = place.Chip{
			Graph:   sys.dev.Graph(),
			Free:    sys.hv.FreeCores(),
			Profile: profile,
		}
	}
	var engineOpts []place.Option
	if cc.cacheSize != nil {
		engineOpts = append(engineOpts, place.WithCacheSize(*cc.cacheSize))
	}
	if cc.mapperWorkers > 0 {
		engineOpts = append(engineOpts, place.WithWorkers(cc.mapperWorkers))
	}
	engineOpts = append(engineOpts, place.WithClock(cc.clock))
	if cc.negTTL != nil {
		engineOpts = append(engineOpts, place.WithNegativeTTL(*cc.negTTL))
	}
	engine, err := place.New(engineChips, engineOpts...)
	if err != nil {
		return nil, err
	}
	c.engine = engine
	c.timing = cc.timing
	if cc.regret != nil {
		c.regret = *cc.regret
	}
	if cc.regretTargetPct != nil {
		c.regretAuto = true
		c.regretPct = *cc.regretTargetPct
		c.regretGoal = cc.regretTarget
		// Start at the static bound when one was given (never below the
		// goal, which trivially satisfies the objective), and let the
		// controller grow it as evidence accumulates.
		c.storeRegretBound(maxFloat(c.regret, c.regretGoal))
	}
	// Chip-saturation probe for the mapper pool's adaptive sizing: when
	// every chip's execution slots are full, mapping faster cannot start
	// jobs sooner, so the pool declines growth and sheds workers.
	engine.SetSaturationProbe(c.execSaturated)
	c.queueDepth = cc.queueDepth
	if c.queueDepth <= 0 {
		c.queueDepth = DefaultQueueDepth
	}
	c.tenantQuota = cc.tenantQuota
	slots := cc.chipSlots
	if slots <= 0 {
		slots = DefaultChipSlots
	}
	c.chipSlots = slots
	disp, err := sched.New[Job, *VirtualNPU, JobReport](
		(*clusterExec)(c),
		sched.Config{
			Chips:       len(specs),
			ChipSlots:   slots,
			QueueDepth:  cc.queueDepth,
			Classes:     NumPriorityClasses,
			AgingRounds: cc.agingRounds,
			TenantQuota: cc.tenantQuota,
			// The two serving paths share the chips: busy sessions keep an
			// unplaceable dispatcher job parked (their release Kicks)
			// instead of failing it on an "idle" cluster, and idle warm
			// sessions are evicted on demand when a dispatcher job cannot
			// place — including create-stage failures like memory
			// exhaustion that ranking cannot see. They also share the
			// tenant quota — session jobs reserve dispatcher slots
			// (ReserveSlot), so one counter guards both paths atomically.
			ExternalBusy: c.sessionBusy,
			Reclaim:      c.sessionReclaim,
			Clock:        cc.clock,
			StageHist:    c.stageHist,
		},
	)
	if err != nil {
		return nil, err
	}
	disp.SetPrewarm(c.prewarmPlacement)
	if c.rec != nil || c.slo != nil {
		disp.SetObserver(func(job Job, stage obs.Stage, detail string, chip int) {
			c.trace(&job, stage, detail, chip)
		})
	}
	c.disp = disp
	c.initStageHists()
	c.reg.AddCollector(c.collect)
	// A fleet-shared tracker is collected once at the fleet level;
	// registering it per shard would duplicate every vnpu_slo_* series in
	// the merged scrape.
	if c.slo != nil && cc.sloShared == nil {
		c.reg.AddCollector(c.slo.Collect)
	}
	if cc.sessionReuse {
		pool, err := session.New[*sessRes, *sessTask](session.Config[*sessRes]{
			Destroy:         c.destroySession,
			Cores:           func(r *sessRes) int { return r.v.NumCores() },
			Priority:        func(r *sessRes) int { return r.class },
			IsCapacity:      capacityCurable,
			MaxIdle:         cc.sessionIdle,
			TTL:             cc.sessionTTL,
			MicroQueueDepth: cc.sessionMicro,
			Clock:           cc.clock,
			OnFree: func() {
				disp.Kick()
				c.pokeSessions()
			},
		})
		if err != nil {
			return nil, err
		}
		c.pool = pool
	}
	return c, nil
}

// execSaturated reports that every chip's execution slots are full — the
// signal that chip workers, not mapping, bound throughput right now. The
// mapper pool's growth consults it (see place.Engine.SetSaturationProbe):
// with all slots busy, a job whose mapping resolves sooner still waits
// for a slot, while an extra mapper goroutine competes with the
// simulator for CPU. Reads per-chip in-flight counters only; never
// takes locks (it runs under the engine mutex).
func (c *Cluster) execSaturated() bool {
	for i := range c.curJobs {
		if c.curJobs[i].Load() < int64(c.chipSlots) {
			return false
		}
	}
	return true
}

// storeRegretBound/loadRegretBound keep the live auto-tuned bound in an
// atomic so RankHit (dispatcher goroutine) and the retuner (execution
// slots) never contend on a lock.
func (c *Cluster) storeRegretBound(b float64) { c.regretBound.Store(math.Float64bits(b)) }
func (c *Cluster) loadRegretBound() float64   { return math.Float64frombits(c.regretBound.Load()) }

// RegretBound reports the hits-first regret bound currently in force:
// the live auto-tuned value under WithPlacementRegretTarget, the static
// WithPlacementRegret value otherwise.
func (c *Cluster) RegretBound() float64 {
	if c.regretAuto {
		return c.loadRegretBound()
	}
	return c.regret
}

// regretRetuneEvery is how many sampled hits-first dispatches pass
// between retune evaluations, and regretMinSamples how much evidence the
// window must hold before the controller moves the bound at all.
const (
	regretRetuneEvery = 64
	regretMinSamples  = 32
)

// maybeRetuneRegret runs the regret controller every regretRetuneEvery
// sampled hits-first dispatches: it polls the realized-regret window's
// target quantile and moves the live bound toward the largest value that
// still holds the objective (see retuneRegretBound). Cheap enough for
// the execution path — most calls are one atomic increment.
func (c *Cluster) maybeRetuneRegret() {
	if !c.regretAuto {
		return
	}
	if c.regretObsN.Add(1)%regretRetuneEvery != 0 {
		return
	}
	q, n := c.engine.RegretQuantile(c.regretPct)
	if n < regretMinSamples {
		return
	}
	c.storeRegretBound(retuneRegretBound(c.loadRegretBound(), q, c.regretGoal))
}

// retuneRegretBound is the controller step: with the realized quantile q
// over the goal, shrink multiplicatively toward the goal (a bound equal
// to the goal satisfies the objective trivially, since realized regret
// never exceeds the bound); with q comfortably under it, grow the bound
// to admit more hits-first dispatches. The dead band between the two
// keeps the bound from oscillating on noisy windows.
func retuneRegretBound(cur, q, goal float64) float64 {
	switch {
	case q > goal:
		cur /= 2
		if cur < goal {
			cur = goal
		}
	case q < goal/2:
		cur = cur*1.25 + 0.25
		if cur > regretBoundCap {
			cur = regretBoundCap
		}
	}
	return cur
}

// regretBoundCap keeps a runaway grown bound finite; at this size every
// cached placement qualifies for hits-first anyway (edit-distance costs
// are far smaller on any real mesh).
const regretBoundCap = 1 << 20

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// prewarmPlacement is the dispatcher's speculation hook: schedule the
// job's missing mappings on the engine's async mapper workers. Never
// blocks — with the pool saturated the speculation is dropped — and the
// engine's single-flight dedups a speculative computation racing the
// dispatcher's own. PlacementStats counts how speculation pays off
// (PrewarmRuns/PrewarmHits/PrewarmWasted).
func (c *Cluster) prewarmPlacement(job Job) {
	c.engine.Prewarm(placeRequest(job.request()))
}

// chipCap is one chip's admission-relevant limits.
type chipCap struct {
	cores int
	mem   uint64
}

// progKey identifies a compiled program: the model name plus a content
// fingerprint over the layer structure, so two different caller-built
// models sharing a name (or aggregate totals) do not alias; the pipeline
// width, which changes the per-core partition; and the chip's weight
// zone, which flips the compiler's streaming decision on heterogeneous
// fleets.
type progKey struct {
	name       string
	modelSig   uint64
	cores      int
	weightZone int64
}

// progEntry is one cached compiled program with its resource layout. The
// program addresses a guest region starting at vaBase; compileFor
// rebases it to the target vNPU's memory base on reuse, so one
// compilation serves every create at the same shape (ROADMAP
// "compile-once execution").
type progEntry struct {
	prog        *isa.Program
	vaBase      uint64
	memBytes    uint64
	weightBytes int64
	streaming   bool
}

// modelSignature fingerprints the model content that determines its
// compiled footprint: per-layer shape, weights and activation sizes, and
// the skip edges. Per-layer resolution matters — two models with equal
// totals but different splits partition differently. Every field is
// length- or position-delimited so variable-length names cannot make two
// different models produce the same byte stream.
func modelSignature(m Model) uint64 {
	h := fnv.New64a()
	fold := func(vs ...int64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	fold(m.InputBytes, int64(len(m.Layers)))
	for _, l := range m.Layers {
		fold(int64(len(l.Name)))
		h.Write([]byte(l.Name))
		fold(l.WeightBytes, l.OutBytes, l.AddBytes, l.FLOPs())
	}
	for _, s := range m.Skips {
		fold(int64(s.From), int64(s.To))
	}
	return h.Sum64()
}

// compileCached compiles the model for the given shape on one chip —
// served from the program cache when the shape was compiled before
// (admission sizing or an earlier create), so one compilation covers the
// whole cluster's traffic at that shape. vaBase is the guest memory base
// the caller wants the program addressed at; a cached program compiled at
// a different base is rebased (a cheap instruction-stream copy), never
// recompiled.
func (c *Cluster) compileCached(chip int, m Model, sig uint64, cores int, vaBase uint64) (*progEntry, error) {
	sys := c.systems[chip]
	key := progKey{name: m.Name, modelSig: sig, cores: cores, weightZone: sys.weightZone()}
	c.progMu.Lock()
	ent, ok := c.progs[key]
	c.progMu.Unlock()
	if !ok {
		prog, info, err := sys.compileAt(m, cores, vaBase)
		if err != nil {
			return nil, err
		}
		ent = &progEntry{
			prog:        prog,
			vaBase:      vaBase,
			memBytes:    info.MemBytes,
			weightBytes: info.WeightBytes,
			streaming:   info.Streaming,
		}
		c.progMu.Lock()
		// Bound the cache so distinct caller-built models cannot grow it
		// forever; evicting an arbitrary entry is fine for a recomputable
		// cache under steady traffic of few shapes. A racing compile of
		// the same key keeps whichever entry lands last — both are valid.
		if len(c.progs) >= progLimit {
			for k := range c.progs {
				delete(c.progs, k)
				break
			}
		}
		c.progs[key] = ent
		c.progMu.Unlock()
	}
	if ent.vaBase == vaBase {
		return ent, nil
	}
	return &progEntry{
		prog:        ent.prog.Rebase(ent.vaBase, vaBase),
		vaBase:      vaBase,
		memBytes:    ent.memBytes,
		weightBytes: ent.weightBytes,
		streaming:   ent.streaming,
	}, nil
}

// compileFor is the serving-path replacement for System.CompileFor: it
// resolves the job's program through the cluster's compile-once cache
// and validates it against the target vNPU, so cold session creates and
// repeat one-shot jobs skip the compiler entirely.
func (c *Cluster) compileFor(chip int, v *VirtualNPU, m Model, sig uint64) (*CompiledModel, error) {
	ent, err := c.compileCached(chip, m, sig, v.NumCores(), v.MemBase())
	if err != nil {
		return nil, err
	}
	if ent.memBytes > v.MemBytes() {
		return nil, fmt.Errorf("vnpu: model %q needs %d bytes, vNPU has %d (set Request.MemoryBytes, e.g. from System.ModelMemoryBytes): %w",
			m.Name, ent.memBytes, v.MemBytes(), ErrMemoryExceeded)
	}
	return &CompiledModel{
		prog:        ent.prog,
		model:       m.Name,
		cores:       v.NumCores(),
		vaBase:      v.MemBase(),
		memBytes:    ent.memBytes,
		weightBytes: ent.weightBytes,
		streaming:   ent.streaming,
	}, nil
}

// modelMemoryBytes sizes a model's global-memory footprint for the given
// core count. The sizing compilation is not discarded: it lands in the
// program cache (keyed by model fingerprint, core count and weight
// zone), so the later cold create at the same shape reuses the program
// instead of recompiling. The caller supplies the fingerprint, which
// Submit computes once and shares with the session-key computation. The
// footprint (input + weights + output) is chip-invariant — per-chip
// scratchpad differences only flip the compiler's streaming decision —
// so chip 0 can size it.
func (c *Cluster) modelMemoryBytes(m Model, sig uint64, cores int) (uint64, error) {
	ent, err := c.compileCached(0, m, sig, cores, 0)
	if err != nil {
		return 0, err
	}
	return ent.memBytes, nil
}

// progLimit bounds the program cache (distinct model/shape pairs).
const progLimit = 1024

// resolvePriority applies the cluster default, the tenant's class cap
// and range clamping, returning the job's effective class.
func (c *Cluster) resolvePriority(job Job) Priority {
	p := job.Priority
	if p == PriorityDefault {
		p = c.defaultPriority
	}
	if p < PriorityBestEffort {
		p = PriorityBestEffort
	}
	if p > PriorityCritical {
		p = PriorityCritical
	}
	if cap, ok := c.priorityCaps[job.tenant()]; ok && p > cap {
		if cap < PriorityBestEffort {
			cap = PriorityBestEffort
		}
		p = cap
	}
	return p
}

// Submit validates the job, applies admission control and enqueues it,
// returning immediately. Admission errors wrap ErrQueueFull,
// ErrQuotaExceeded, ErrDeadlineExceeded (Job.Deadline already passed) or
// ErrDestroyed (closed cluster); a malformed job (nil topology, invalid
// model) fails with a plain validation error. The context governs the
// job's whole lifetime: canceling it abandons the job whether queued or
// awaiting capacity.
//
// Admission order is owned by one scheduler core across both serving
// paths: higher Priority classes place first (with aging protecting
// lower classes from starvation), earlier Deadlines first within a
// class, admission order last — and session-eligible jobs cannot outrun
// older queued one-shot jobs of equal-or-higher class (they wait their
// turn on a shared sequence ticket).
func (c *Cluster) Submit(ctx context.Context, job Job) (*Handle, error) {
	if job.Topology == nil || job.Topology.NumNodes() == 0 {
		return nil, fmt.Errorf("vnpu: job needs a topology")
	}
	if err := job.Model.Validate(); err != nil {
		return nil, fmt.Errorf("vnpu: job model: %w", err)
	}
	// Resolve the scheduling class once; everything downstream (queue
	// order, session eviction weight, per-class stats, JobReport) reads
	// the resolved value.
	job.Priority = c.resolvePriority(job)
	// A topology larger than the largest chip can never be placed; reject
	// it here rather than letting it head-of-line-block the FIFO
	// dispatcher until the cluster drains.
	if n := job.Topology.NumNodes(); n > c.maxCores {
		return nil, fmt.Errorf("vnpu: job topology needs %d cores, largest chip has %d: %w",
			n, c.maxCores, ErrTopologyUnsatisfiable)
	}
	// The model fingerprint keys the program cache and the session
	// class; hash the model once per Submit and share it.
	modelSig := modelSignature(job.Model)
	job.modelSig = modelSig
	// Size the job's memory from its model once, up front on the caller's
	// goroutine — memoized across submissions, so steady-state admission
	// does not recompile the workload at all. Place must never compile on
	// the dispatch path.
	req := job.request()
	if req.MemoryBytes == 0 {
		bytes, err := c.modelMemoryBytes(job.Model, modelSig, job.Topology.NumNodes())
		if err != nil {
			return nil, fmt.Errorf("vnpu: sizing job memory: %w", err)
		}
		req.MemoryBytes = bytes
		opts := job.Options
		job.Options = append(opts[:len(opts):len(opts)], WithMemory(bytes))
	}
	// Like the core-count guard, but joint: some single chip must satisfy
	// BOTH the core count and the memory bound, or no placement can ever
	// succeed — checking the two against independent cluster-wide maxima
	// would admit such a job on any heterogeneous fleet where one chip
	// has the cores and a different one has the memory.
	fits := false
	for _, cap := range c.chipCaps {
		if job.Topology.NumNodes() <= cap.cores && req.MemoryBytes <= cap.mem {
			fits = true
			break
		}
	}
	if !fits {
		return nil, fmt.Errorf("vnpu: no chip has both %d cores and %d bytes of memory: %w",
			job.Topology.NumNodes(), req.MemoryBytes, ErrMemoryExceeded)
	}
	// Validation passed: hand the job its trace identity and record the
	// submit edge (the fleet-shared recorder or SLO tracker keeps ids
	// unique across shards, so a forwarded job keeps one track).
	if c.rec != nil || c.slo != nil {
		if job.obsID == 0 {
			if c.rec != nil {
				job.obsID = c.rec.NextJob()
			} else {
				job.obsID = c.slo.NextJob()
			}
		}
		c.trace(&job, obs.StageSubmit, "", -1)
	}
	// Session-eligible jobs lease resident vNPUs instead of paying
	// create→map→run→destroy per job: explicit opt-in via Job.Reusable, or
	// auto-promotion once the same (tenant, model, topology, options)
	// fingerprint repeats. Everything else takes the dispatcher path.
	if c.pool != nil {
		if key, ok := sessionKeyOf(job, req, modelSig); ok && (job.Reusable || c.autoPromote(key)) {
			return c.submitSession(ctx, job, req, key)
		}
	}
	h, err := c.disp.Submit(ctx, job.tenant(), job.Priority.class(), job.Deadline, job)
	if err != nil {
		return nil, err
	}
	return &Handle{h: h}, nil
}

// Chips reports the number of chips in the cluster.
func (c *Cluster) Chips() int { return len(c.systems) }

// Chip returns the i-th chip's System for direct (synchronous) use or
// inspection. Mixing direct Create/RunModel calls with an active job
// stream on the same chip is not supported (direct creates bypass the
// placement engine's view of the chip's free cores).
func (c *Cluster) Chip(i int) *System { return c.systems[i] }

// Utilization reports the fraction of allocated cores per chip. Cores
// held by idle (warm) resident sessions count as allocated here — they
// are, from the hypervisor's point of view — but the scheduler's load
// tiebreak deliberately does not use this number: see CoreUsage for the
// split between actively executing and warm-idle cores.
func (c *Cluster) Utilization() []float64 {
	out := make([]float64, len(c.systems))
	for i, sys := range c.systems {
		out[i] = sys.Utilization()
	}
	return out
}

// Close stops intake on both serving paths, waits for every admitted job
// to finish, destroys the resident session vNPUs, and shuts down the
// dispatcher and chip workers. Submissions after Close fail with
// ErrDestroyed.
func (c *Cluster) Close() error {
	c.sessMu.Lock()
	already := c.sessClosed
	c.sessClosed = true
	c.sessMu.Unlock()
	if already {
		return fmt.Errorf("vnpu: cluster closed: %w", ErrDestroyed)
	}
	// Session jobs may still be draining micro-queues; they finish (or
	// fail on canceled contexts) on their own.
	c.sessWG.Wait()
	var poolErr error
	if c.pool != nil {
		poolErr = c.pool.Close()
	}
	if err := c.disp.Close(); err != nil {
		return err
	}
	// The dispatcher has drained every job (including map-parked ones),
	// so no one waits on an async mapping anymore; stop the workers last.
	c.engine.Close()
	return poolErr
}

// ClusterStats is a snapshot of serving counters.
type ClusterStats struct {
	// Submitted counts jobs admitted past quota and queue checks.
	Submitted uint64
	// RejectedQueueFull counts submissions refused with ErrQueueFull.
	RejectedQueueFull uint64
	// RejectedQuota counts submissions refused with ErrQuotaExceeded.
	RejectedQuota uint64
	// Completed counts jobs that finished successfully.
	Completed uint64
	// Failed counts jobs that finished with an error (including
	// cancellations).
	Failed uint64
	// ChipJobs counts executed jobs per chip.
	ChipJobs []int
	// ChipBusy is the per-chip occupancy integral: each execution's
	// duration weighted by the fraction of the chip's cores its vNPU
	// held. Unlike a wall-clock sum over possibly overlapping
	// executions, it never exceeds elapsed time, so busy/wall stays a
	// true per-chip utilization.
	ChipBusy []time.Duration
	// HitsFirst counts dispatcher jobs started through the hits-first
	// fast path (a cached placement within the regret bound).
	HitsFirst uint64
	// MapParked counts dispatcher jobs that parked on an async mapping
	// instead of blocking the dispatch loop on a mapper run.
	MapParked uint64
	// ExecOverlapAvg is the mean number of executions in flight on a
	// chip, sampled at each execution's start (1 = fully serialized).
	ExecOverlapAvg float64
	// ChipConcurrencyP99 is the 99th percentile of the same
	// concurrency-level samples.
	ChipConcurrencyP99 float64
}

// SchedStats is a per-class snapshot of the scheduler core: submissions,
// completions, deadline misses, queued-work displacements, aging
// promotions and p50/p99 queueing latency per priority class, covering
// BOTH serving paths. Index it with Priority.class-order (0 =
// PriorityBestEffort ... 3 = PriorityCritical).
type SchedStats = metrics.SchedStats

// SchedStats returns the per-class scheduler counters.
func (c *Cluster) SchedStats() SchedStats { return c.Snapshot().Sched }

// Stats returns a snapshot of the cluster's serving counters, covering
// both serving paths: dispatcher jobs and session-pool jobs alike count
// toward Submitted/Completed/Failed and the per-chip totals. It reads
// through Snapshot (see telemetry.go), the single merge point for both
// paths' counters.
func (c *Cluster) Stats() ClusterStats { return c.Snapshot().Cluster }

// PlacementStats returns a snapshot of the placement engine's counters:
// mapping-cache hits, misses and evictions, plus cumulative and average
// placement-decision latency.
func (c *Cluster) PlacementStats() PlacementStats { return c.Snapshot().Placement }

// Pressure reports the cluster's serving load as a routing signal for a
// fleet's one-shot balancer: admitted-but-unfinished work on both
// serving paths normalized by the queue depth, plus the fraction of
// cores any vNPU holds (running jobs and resident sessions alike — the
// held-core term keeps traffic off shards whose capacity is pinned even
// when their queues are short). Higher means more loaded; the scale is
// comparable across shards of one fleet, not across differently-sized
// clusters.
func (c *Cluster) Pressure() float64 {
	c.sessMu.Lock()
	sess := c.sessInflight
	c.sessMu.Unlock()
	p := float64(c.disp.Pending()+sess) / float64(c.queueDepth)
	total, held := 0, 0
	for _, sys := range c.systems {
		cores := sys.Config().Cores()
		total += cores
		held += cores - sys.FreeCores()
	}
	if total > 0 {
		p += float64(held) / float64(total)
	}
	return p
}

// quiesced reports that the cluster owns no admitted-but-unfinished work
// on either serving path — the drain condition a fleet waits for.
func (c *Cluster) quiesced() bool {
	c.sessMu.Lock()
	sess := c.sessInflight
	c.sessMu.Unlock()
	return sess == 0 && c.disp.Pending() == 0
}

// flushSessions evicts every idle resident session, returning capacity
// to the chips — a drained shard must not keep warm leases whose keys
// now hash to another shard. Busy sessions cannot exist on a quiesced
// cluster, so this empties the pool.
func (c *Cluster) flushSessions() int {
	if c.pool == nil {
		return 0
	}
	const all = int(^uint(0) >> 1)
	return c.pool.EvictIdle(all)
}

// clusterExec adapts the Cluster to the dispatcher's Executor interface.
// Rank and Place run on the dispatcher goroutine, Execute and Release on
// one of the owning chip's execution slots — the hypervisor's and
// engine's own locks cover that concurrency, and execution itself is
// admitted by the chip's region lock: disjoint vNPUs overlap in their
// private timing domains, overlapping ones serialize.
type clusterExec Cluster

// placeRequest projects a job's Request onto the placement engine's.
func placeRequest(req Request) place.Request {
	return place.Request{
		Topology:    req.Topology,
		Strategy:    req.Strategy,
		MapOptions:  req.MapOptions,
		MemoryBytes: req.MemoryBytes,
	}
}

// Rank asks the placement engine for every chip that can host the job,
// scored by topology edit distance then chip price (both cache-served on
// the hot path). A load term — the chip's actively executing cores
// blended with its worker backlog — breaks exact ties, so equally-good
// placements spread across chips instead of piling onto the first one; it
// can never override a cost or price difference, however small. Cores
// held by idle warm sessions are excluded from the load term (they are
// reclaimable, not busy) and instead feed the Warm tiebreak, so a
// backlogged chip with a warm pool wins ties over one whose allocation is
// all hard.
//
// When no chip can host the job because warm sessions hold the capacity,
// Rank reclaims idle sessions LRU-first and rescores — queued jobs that
// need fresh rectangles evict warm pools instead of failing with
// ErrNoCapacity.
func (e *clusterExec) Rank(job Job) ([]sched.Candidate, error) {
	req := placeRequest(job.request())
	for {
		cands, err := e.engine.Place(req)
		if err != nil {
			if e.pool != nil && capacityCurable(err) && e.pool.EvictIdle(1) > 0 {
				continue
			}
			return nil, err
		}
		return e.scoreCandidates(cands), nil
	}
}

// scoreCandidates folds the load and warm terms into the engine's
// cost/price candidates (see Rank for the semantics of each term).
func (e *clusterExec) scoreCandidates(cands []place.Candidate) []sched.Candidate {
	out := make([]sched.Candidate, len(cands))
	for i, c := range cands {
		backlog := float64(e.disp.Backlog(c.Chip))
		usage := (*Cluster)(e).coreUsage(c.Chip)
		out[i] = sched.Candidate{
			Chip: c.Chip,
			Score: sched.Score{
				Cost:  c.Cost,
				Price: c.Price,
				Load:  (usage.ActiveFraction() + backlog/(backlog+1)) / 2,
				Warm:  usage.WarmFraction(),
			},
		}
	}
	return out
}

// RankCached is the dispatcher's backfill rank: only chips whose mapping
// for the job is already cached (and valid under the current free sets)
// qualify, and no mapping is ever computed — an opportunistic
// out-of-order placement must be free to evaluate, or backfilling would
// serialize mapper work behind the head-of-line job it is meant to
// bypass.
func (e *clusterExec) RankCached(job Job) []sched.Candidate {
	return e.scoreCandidates(e.engine.PlaceCached(placeRequest(job.request())))
}

// RankHit is the dispatcher's hits-first rank: the cached candidates
// whose edit-distance cost is within the cluster's regret bound. A job
// started from one can regret at most that bound versus the exhaustive
// cold rank (the cold optimum is never negative), which is the
// bounded-regret relaxation of the old cached==cold equivalence — see
// WithPlacementRegret. Price/load tiebreaks among the returned
// candidates are the ordinary scoring.
func (e *clusterExec) RankHit(job Job) []sched.Candidate {
	bound, ok := (*Cluster)(e).hitsFirstBound()
	if !ok {
		return nil
	}
	cands := e.engine.PlaceHit(placeRequest(job.request()))
	eligible := cands[:0]
	for _, c := range cands {
		if c.Cost <= bound {
			eligible = append(eligible, c)
		}
	}
	return e.scoreCandidates(eligible)
}

// hitsFirstBound resolves the regret bound in force for this dispatch:
// the live auto-tuned value under WithPlacementRegretTarget, the static
// WithPlacementRegret value otherwise. ok=false disables hits-first
// entirely (negative static bound, no auto-tuning).
func (c *Cluster) hitsFirstBound() (bound float64, ok bool) {
	if c.regretAuto {
		return c.loadRegretBound(), true
	}
	if c.regret < 0 {
		return 0, false
	}
	return c.regret, true
}

// RankAsync hands the job's missing mappings to the engine's async
// mapper workers, returning the mapReady edge the dispatcher parks the
// job on — or nil when every chip is already answered (or hits-first is
// disabled), telling the dispatcher to rank synchronously.
func (e *clusterExec) RankAsync(job Job) <-chan struct{} {
	if _, ok := (*Cluster)(e).hitsFirstBound(); !ok {
		return nil
	}
	return e.engine.MapAsync(placeRequest(job.request()))
}

// ObserveHit samples the realized regret of a hits-first dispatch: the
// engine finishes the async rank the job skipped and records how much
// cheaper its eventual best mapping was than the cached candidate the
// job started on. Bounded and fire-and-forget — see
// place.Engine.ObserveRegret; PlacementStats reports the distribution.
func (e *clusterExec) ObserveHit(job Job, cost float64) {
	e.engine.ObserveRegret(placeRequest(job.request()), cost)
	(*Cluster)(e).maybeRetuneRegret()
}

// Place creates the job's vNPU on the chosen chip, reusing the engine's
// resolved mapping so the hypervisor never re-runs the topology mapper on
// the dispatch path; the engine's free-set mirror is committed in the
// same step. The request's memory was already sized at Submit.
func (e *clusterExec) Place(chip int, job Job) (*VirtualNPU, error) {
	req := job.request()
	mapRes, err := e.engine.Resolve(chip, placeRequest(req))
	if err != nil {
		return nil, err
	}
	v, err := e.systems[chip].hv.CreateVNPUPlaced(req, mapRes)
	if err != nil {
		return nil, err
	}
	if err := e.engine.Commit(chip, v.Nodes()); err != nil {
		// The engine's mirror disagrees with the hypervisor — undo the
		// create rather than serve from a corrupted placement view.
		_ = e.systems[chip].Destroy(v)
		return nil, err
	}
	// Give the vNPU its private timing domain so Execute can overlap it
	// with disjoint neighbors. The hypervisor hands out disjoint core
	// sets, so an overlap failure here means the placement view is
	// corrupt — undo the create rather than execute on shared timing.
	if err := v.OpenDomain(); err != nil {
		nodes := append([]topo.NodeID(nil), v.Nodes()...)
		_ = e.systems[chip].Destroy(v)
		_ = e.engine.Release(chip, nodes)
		return nil, err
	}
	return v, nil
}

// Execute runs the job on its placed vNPU. The program comes from the
// cluster's compile-once cache — admission sizing already compiled the
// shape, so repeat one-shot traffic runs a cached program rebased to its
// vNPU instead of recompiling per job. The vNPU's private timing domain
// is reset first (ResetForRun): each job gets a fresh cycle timeline
// without disturbing neighbors executing concurrently on the same chip.
// The region claim admits the execution — normally immediately, since
// placed vNPUs hold disjoint cores. The job's context cancels mid-run:
// the simulator polls it between timeline events.
func (e *clusterExec) Execute(ctx context.Context, chip int, v *VirtualNPU, job Job) (JobReport, error) {
	if err := ctx.Err(); err != nil {
		return JobReport{}, err
	}
	sys := e.systems[chip]
	sig := job.modelSig
	if sig == 0 {
		// Defensive: only Submit-built jobs carry the fingerprint.
		sig = modelSignature(job.Model)
	}
	// Resolve the program before claiming the region: a cache hit costs
	// a map lookup (plus a rebase copy), and a miss compiles without
	// holding cores another job might be waiting on.
	cm, err := (*Cluster)(e).compileFor(chip, v, job.Model, sig)
	if err != nil {
		return JobReport{}, err
	}
	claim := (*Cluster)(e).acquireRegion(chip, v)
	if e.testExecHook != nil {
		e.testExecHook(chip)
	}
	start := e.clk.Now()
	v.ResetForRun()
	rep, err := sys.RunCompiled(ctx, v, cm, job.Iterations)
	(*Cluster)(e).releaseRegion(chip, claim, v.NumCores(), e.clk.Since(start))
	if err != nil {
		return JobReport{}, err
	}
	return JobReport{
		Report:   rep,
		Chip:     chip,
		Tenant:   job.tenant(),
		Model:    job.Model.Name,
		MapCost:  v.MapCost(),
		Priority: job.Priority,
	}, nil
}

// Release destroys the job's vNPU, returning its cores and memory to the
// chip and the freed cores to the engine's mirror.
func (e *clusterExec) Release(chip int, v *VirtualNPU) error {
	nodes := append([]topo.NodeID(nil), v.Nodes()...)
	if err := e.systems[chip].Destroy(v); err != nil {
		return err
	}
	if err := e.engine.Release(chip, nodes); err != nil {
		return err
	}
	// Session jobs parked on capacity watch dispatcher releases too.
	(*Cluster)(e).pokeSessions()
	return nil
}
